package registry

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// Shadow evaluation: while a candidate artifact is registered next to
// the live one, every request the live model answers is also scored by
// the candidate, and the registry tallies agreement atomically — no
// lock on the request path. The resulting report (agreement rate plus
// a live-label x candidate-label confusion matrix) is the evidence an
// operator promotes on: it is the production analogue of the paper's
// cross-architecture transfer experiments, measured on real traffic
// instead of a held-out fold.

// numClasses is the confusion-grid dimension. Every artifact this
// repository trains maps labels onto the same four kernel formats, so
// a fixed grid keeps the tallies allocation-free and atomic.
const numClasses = sparse.NumKernelFormats

// ShadowStats accumulates live-vs-candidate comparisons for one arch.
type ShadowStats struct {
	scored   atomic.Int64
	agree    atomic.Int64
	disagree atomic.Int64
	// confusion[live*numClasses+cand] counts comparisons where the live
	// model answered label `live` and the candidate label `cand`.
	confusion [numClasses * numClasses]atomic.Int64
	// outOfRange counts comparisons whose labels fell outside the grid
	// (a foreign artifact with more formats); they still count as
	// scored and agree/disagree.
	outOfRange atomic.Int64

	// Measured tallies, fed by /v1/feedback outcomes that cover both
	// sides' formats: how the pair compares on real kernel times, not
	// just label agreement. Guarded by a mutex — feedback volume is a
	// trickle next to the prediction path.
	measuredMu sync.Mutex
	measured   int64 // outcomes where both sides' formats were timed
	liveWins   int64
	candWins   int64
	ties       int64
	// Log-regret sums over full sweeps, for geometric means: how much
	// slower than the measured-best format each side's pick was.
	liveLogRegret  float64
	candLogRegret  float64
	regretMeasured int64
}

// recordMeasured tallies one feedback outcome against the pair. Only
// outcomes timing both the live and candidate picks compare them; full
// sweeps additionally feed the per-side regret geometric means.
func (s *ShadowStats) recordMeasured(o serve.Outcome) {
	if !(o.ServedMs > 0) || !(o.CandidateMs > 0) {
		return
	}
	s.measuredMu.Lock()
	defer s.measuredMu.Unlock()
	s.measured++
	switch {
	case o.CandidateMs < o.ServedMs:
		s.candWins++
	case o.CandidateMs > o.ServedMs:
		s.liveWins++
	default:
		s.ties++
	}
	if o.Full && o.Regret > 0 {
		// bestMs is recoverable from the live side's regret; the
		// candidate's regret is its own time over the same best.
		bestMs := o.ServedMs / o.Regret
		s.liveLogRegret += math.Log(o.Regret)
		s.candLogRegret += math.Log(o.CandidateMs / bestMs)
		s.regretMeasured++
	}
}

func newShadowStats() *ShadowStats { return &ShadowStats{} }

// record tallies one comparison.
func (s *ShadowStats) record(live, cand serve.Prediction) {
	s.scored.Add(1)
	if live.Label == cand.Label {
		s.agree.Add(1)
	} else {
		s.disagree.Add(1)
	}
	if live.Label >= 0 && live.Label < numClasses && cand.Label >= 0 && cand.Label < numClasses {
		s.confusion[live.Label*numClasses+cand.Label].Add(1)
	} else {
		s.outOfRange.Add(1)
	}
}

// Reset zeroes the tallies — the comparison restarts when either side
// of the pair is swapped.
func (s *ShadowStats) Reset() {
	s.scored.Store(0)
	s.agree.Store(0)
	s.disagree.Store(0)
	s.outOfRange.Store(0)
	for i := range s.confusion {
		s.confusion[i].Store(0)
	}
	s.measuredMu.Lock()
	s.measured, s.liveWins, s.candWins, s.ties = 0, 0, 0, 0
	s.liveLogRegret, s.candLogRegret, s.regretMeasured = 0, 0, 0
	s.measuredMu.Unlock()
}

// Shadow metrics share the obs registry with everything else.
var (
	shadowScored   = obs.Default.Counter("registry/shadow/scored")
	shadowAgree    = obs.Default.Counter("registry/shadow/agree")
	shadowDisagree = obs.Default.Counter("registry/shadow/disagree")
)

// RecordShadow tallies one live-vs-candidate comparison for arch. A
// race with Promote (the stats vanish between the request resolving
// the shadow and recording) drops the sample silently — the pair it
// describes no longer exists.
func (r *Registry) RecordShadow(arch string, live, cand serve.Prediction) {
	a := serve.NormalizeArch(arch)
	r.mu.RLock()
	st := r.stats[a]
	r.mu.RUnlock()
	if st == nil {
		return
	}
	st.record(live, cand)
	shadowScored.Inc()
	if live.Label == cand.Label {
		shadowAgree.Inc()
	} else {
		shadowDisagree.Inc()
	}
}

// ArchShadowReport is the evaluation state of one live/candidate pair.
type ArchShadowReport struct {
	Arch          string `json:"arch"`
	LiveHash      string `json:"live_hash,omitempty"`
	CandidateHash string `json:"candidate_hash,omitempty"`
	CandidatePath string `json:"candidate_path"`
	// Scored = Agree + Disagree: every request scored by both models.
	Scored   int64 `json:"scored"`
	Agree    int64 `json:"agree"`
	Disagree int64 `json:"disagree"`
	// AgreementRate is Agree/Scored (0 when nothing scored yet).
	AgreementRate float64 `json:"agreement_rate"`
	// Formats names the confusion grid axes; Confusion[i][j] counts
	// requests the live model labelled Formats[i] and the candidate
	// Formats[j]. OutOfRange counts comparisons outside the grid.
	Formats    []string  `json:"formats"`
	Confusion  [][]int64 `json:"confusion"`
	OutOfRange int64     `json:"out_of_range,omitempty"`
	// Measured quality, from /v1/feedback outcomes that timed both
	// sides' picks: head-to-head wins and (over full sweeps) each
	// side's oracle-slowdown geometric mean. The evidence to promote
	// on when agreement alone is ambiguous.
	MeasuredScored    int64   `json:"measured_scored,omitempty"`
	LiveWins          int64   `json:"live_wins,omitempty"`
	CandidateWins     int64   `json:"candidate_wins,omitempty"`
	Ties              int64   `json:"ties,omitempty"`
	LiveRegretGM      float64 `json:"live_regret_gm,omitempty"`
	CandidateRegretGM float64 `json:"candidate_regret_gm,omitempty"`
}

// ShadowReportData is the full /v1/admin/shadow answer.
type ShadowReportData struct {
	Arches []ArchShadowReport `json:"arches"`
	// Scored and Disagree aggregate over every pair.
	Scored   int64 `json:"scored"`
	Disagree int64 `json:"disagree"`
}

// ShadowReport snapshots every registered live/candidate pair.
func (r *Registry) ShadowReport() any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	report := ShadowReportData{Arches: []ArchShadowReport{}}
	for _, a := range r.archesLocked() {
		ss := r.shadow[a]
		st := r.stats[a]
		if ss == nil || st == nil {
			continue
		}
		ar := ArchShadowReport{
			Arch:          a,
			CandidatePath: ss.path,
			Scored:        st.scored.Load(),
			Agree:         st.agree.Load(),
			Disagree:      st.disagree.Load(),
			OutOfRange:    st.outOfRange.Load(),
			Formats:       serve.KernelFormatNames(),
		}
		if ar.Scored > 0 {
			ar.AgreementRate = float64(ar.Agree) / float64(ar.Scored)
		}
		st.measuredMu.Lock()
		ar.MeasuredScored = st.measured
		ar.LiveWins = st.liveWins
		ar.CandidateWins = st.candWins
		ar.Ties = st.ties
		if st.regretMeasured > 0 {
			n := float64(st.regretMeasured)
			ar.LiveRegretGM = math.Exp(st.liveLogRegret / n)
			ar.CandidateRegretGM = math.Exp(st.candLogRegret / n)
		}
		st.measuredMu.Unlock()
		if ls := r.live[a]; ls != nil && ls.entry != nil {
			ar.LiveHash = ls.entry.Hash
		}
		if ss.entry != nil {
			ar.CandidateHash = ss.entry.Hash
		}
		grid := make([][]int64, numClasses)
		for i := range grid {
			grid[i] = make([]int64, numClasses)
			for j := range grid[i] {
				grid[i][j] = st.confusion[i*numClasses+j].Load()
			}
		}
		ar.Confusion = grid
		report.Arches = append(report.Arches, ar)
		report.Scored += ar.Scored
		report.Disagree += ar.Disagree
	}
	return report
}
