// Package registry is the multi-architecture model registry behind
// `spmvselect serve -models`: it hosts one live serve.Artifact per
// target architecture (the paper's per-GPU models — Pascal, Volta,
// Turing — deployed side by side), hot-swaps them atomically from disk
// with content-hash change detection (explicit reload or SIGHUP, both
// idempotent), and evaluates shadow candidates against the live model
// on production traffic before promotion — the serving analogue of the
// paper's transfer-with-retraining experiments (Tables 6-7): a model
// retrained for new hardware earns its place by agreeing with (or
// measurably beating) the incumbent on real requests, not by fiat.
//
// The registry implements serve.Backend and serve.AdminBackend; the
// HTTP layer stays in internal/serve. Activity lands in the obs
// registry:
//
//	registry/swaps            counter  entries hot-swapped (reload or promote)
//	registry/reloads          counter  reload sweeps executed
//	registry/promotes         counter  shadow candidates promoted to live
//	registry/load_errors      counter  artifact loads that failed
//	registry/shadow/scored    counter  live-vs-candidate comparisons recorded
//	registry/shadow/agree     counter  comparisons where both picked the same label
//	registry/shadow/disagree  counter  comparisons where they differed
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Entry is one loaded artifact: the model plus the identity that makes
// swaps observable (content hash) and reproducible (source path).
type Entry struct {
	Artifact *serve.Artifact
	// Hash is the content hash of the artifact file, the version every
	// response carries and every reload compares against.
	Hash string
	// Path is the file the entry was loaded from.
	Path string
}

// slot is one configured position (live or shadow) for an arch: where
// to load from, what is currently installed, and the last load error.
type slot struct {
	path  string
	entry *Entry // nil until the first successful load
	err   error  // last load failure (a failed reload keeps the old entry)
}

// Registry is a concurrency-safe, versioned collection of named
// artifacts keyed by target architecture. All reads (request routing)
// take a read lock; swaps are atomic under the write lock, so a
// request observes either the old or the new model, never a mix.
type Registry struct {
	mu     sync.RWMutex
	def    string // default arch ("" until set or first Configure)
	live   map[string]*slot
	shadow map[string]*slot
	stats  map[string]*ShadowStats
	// drift holds the per-arch drift monitor for live artifacts that
	// carry a training baseline; driftOpts tunes it.
	drift     map[string]*driftState
	driftOpts DriftOptions
	// quality holds the per-arch measured-outcome window for live
	// artifacts (fed by /v1/feedback); qualityOpts tunes it.
	quality     map[string]*qualityState
	qualityOpts QualityOptions
	onSwap      []func()

	swaps      *obs.Counter
	reloads    *obs.Counter
	promotes   *obs.Counter
	loadErrors *obs.Counter
}

// The registry satisfies the serving interfaces, including the
// drift-monitoring and measured-quality surfaces.
var (
	_ serve.Backend         = (*Registry)(nil)
	_ serve.AdminBackend    = (*Registry)(nil)
	_ serve.DriftBackend    = (*Registry)(nil)
	_ serve.QualityBackend  = (*Registry)(nil)
	_ serve.ShadowInstaller = (*Registry)(nil)
)

// New returns an empty registry. Configure architectures, then LoadAll.
func New() *Registry {
	return &Registry{
		live:       map[string]*slot{},
		shadow:     map[string]*slot{},
		stats:      map[string]*ShadowStats{},
		drift:      map[string]*driftState{},
		quality:    map[string]*qualityState{},
		swaps:      obs.Default.Counter("registry/swaps"),
		reloads:    obs.Default.Counter("registry/reloads"),
		promotes:   obs.Default.Counter("registry/promotes"),
		loadErrors: obs.Default.Counter("registry/load_errors"),
	}
}

// Configure declares a live slot: arch will be served from the artifact
// at path once LoadAll (or Reload) has read it. The first configured
// arch becomes the default until SetDefault overrides it.
func (r *Registry) Configure(arch, path string) error {
	a := serve.NormalizeArch(arch)
	if a == "" {
		return fmt.Errorf("registry: empty architecture name")
	}
	if path == "" {
		return fmt.Errorf("registry: empty artifact path for %q", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.live[a]; dup {
		return fmt.Errorf("registry: architecture %q configured twice", a)
	}
	r.live[a] = &slot{path: path}
	if r.def == "" {
		r.def = a
	}
	return nil
}

// ConfigureShadow declares a shadow candidate for an already-configured
// arch. Every request the live model answers is also scored by the
// candidate, and the tallies feed ShadowReport.
func (r *Registry) ConfigureShadow(arch, path string) error {
	a := serve.NormalizeArch(arch)
	if path == "" {
		return fmt.Errorf("registry: empty shadow artifact path for %q", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.live[a]; !ok {
		return fmt.Errorf("registry: shadow for unconfigured architecture %q", a)
	}
	if _, dup := r.shadow[a]; dup {
		return fmt.Errorf("registry: shadow for %q configured twice", a)
	}
	r.shadow[a] = &slot{path: path}
	r.stats[a] = newShadowStats()
	return nil
}

// InstallShadow installs artifact bytes pushed over the wire as arch's
// shadow candidate ("" selects the default arch) — the receiving end of
// a fleet rollout. The bytes are decoded before anything is replaced
// (a corrupt push leaves the current candidate serving), then spooled
// to a temp file so subsequent Reload sweeps re-read a real path like
// any disk-configured candidate. Re-pushing the bytes already installed
// is a no-op (content-hash idempotent, like Reload); pushing different
// bytes replaces the candidate and resets its tallies. Returns the
// registry's own content hash of the received bytes.
func (r *Registry) InstallShadow(arch string, data []byte) (string, error) {
	a := serve.NormalizeArch(arch)
	hash := serve.HashBytes(data)
	art, err := serve.Load(bytes.NewReader(data))
	if err != nil {
		return "", fmt.Errorf("registry: decoding pushed candidate: %w", err)
	}

	r.mu.RLock()
	if a == "" {
		a = r.def
	}
	_, configured := r.live[a]
	ss := r.shadow[a]
	already := ss != nil && ss.entry != nil && ss.entry.Hash == hash
	r.mu.RUnlock()
	if !configured {
		return "", fmt.Errorf("registry: %w %q", serve.ErrUnknownArch, arch)
	}
	if already {
		return hash, nil
	}

	// Spool outside the lock; the file outlives the request so Reload
	// stays coherent for the candidate's whole shadow period.
	spool, err := os.CreateTemp("", "spmvselect-shadow-"+a+"-"+hash+"-*.model")
	if err != nil {
		return "", fmt.Errorf("registry: spooling pushed candidate: %w", err)
	}
	if _, err := spool.Write(data); err != nil {
		spool.Close()
		os.Remove(spool.Name())
		return "", fmt.Errorf("registry: spooling pushed candidate: %w", err)
	}
	if err := spool.Close(); err != nil {
		os.Remove(spool.Name())
		return "", fmt.Errorf("registry: spooling pushed candidate: %w", err)
	}

	r.mu.Lock()
	if _, ok := r.live[a]; !ok {
		r.mu.Unlock()
		os.Remove(spool.Name())
		return "", fmt.Errorf("registry: %w %q", serve.ErrUnknownArch, arch)
	}
	entry := &Entry{Artifact: art, Hash: hash, Path: spool.Name()}
	r.shadow[a] = &slot{path: spool.Name(), entry: entry}
	r.stats[a] = newShadowStats()
	r.mu.Unlock()
	return hash, nil
}

// SetDefault selects the arch serving requests that name none. It must
// already be configured.
func (r *Registry) SetDefault(arch string) error {
	a := serve.NormalizeArch(arch)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.live[a]; !ok {
		return fmt.Errorf("registry: default architecture %q is not configured", a)
	}
	r.def = a
	return nil
}

// OnSwap registers fn to run after every swap (reload that changed
// something, or promotion). The serve layer hooks its cache flush here.
func (r *Registry) OnSwap(fn func()) {
	r.mu.Lock()
	r.onSwap = append(r.onSwap, fn)
	r.mu.Unlock()
}

// fireSwapHooks runs the registered hooks outside the registry lock.
func (r *Registry) fireSwapHooks() {
	r.mu.RLock()
	hooks := append([]func(){}, r.onSwap...)
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// LoadAll loads every configured live and shadow artifact from disk.
// It is Reload without the idempotence short-cut mattering (nothing is
// loaded yet); any failure is returned (joined) and leaves the failed
// slots unloaded, which /readyz reports.
func (r *Registry) LoadAll() error {
	_, err := r.Reload()
	return err
}

// loadTarget is one slot scheduled for (re)loading, snapshotted outside
// the lock so file I/O never blocks request routing.
type loadTarget struct {
	arch    string
	name    string // "arch" or "shadow:arch", the Reload changed-list entry
	shadow  bool
	path    string
	oldHash string
}

// Reload re-reads every configured artifact from its source path,
// hot-swapping exactly the entries whose file content hash changed and
// returning their names ("arch" for live entries, "shadow:arch" for
// candidates). Unchanged files are not re-decoded and not swapped, so
// repeated reloads are idempotent; a file that fails to read or decode
// keeps the previous entry (if any) and contributes to the joined
// error. Shadow tallies reset for an arch whose live model or candidate
// swapped — the old comparison no longer describes the new pair.
func (r *Registry) Reload() (changed []string, err error) {
	r.reloads.Inc()

	r.mu.RLock()
	targets := make([]loadTarget, 0, len(r.live)+len(r.shadow))
	for a, s := range r.live {
		t := loadTarget{arch: a, name: a, path: s.path}
		if s.entry != nil {
			t.oldHash = s.entry.Hash
		}
		targets = append(targets, t)
	}
	for a, s := range r.shadow {
		t := loadTarget{arch: a, name: "shadow:" + a, shadow: true, path: s.path}
		if s.entry != nil {
			t.oldHash = s.entry.Hash
		}
		targets = append(targets, t)
	}
	r.mu.RUnlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	// Read and decode outside the lock: routing continues on the old
	// entries while files load.
	loaded := make(map[string]*Entry, len(targets)) // by name; nil when unchanged
	var errs []error
	for _, t := range targets {
		entry, fresh, lerr := loadEntry(t.path, t.oldHash)
		if lerr != nil {
			r.loadErrors.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", t.name,
				&loadError{arch: t.arch, shadow: t.shadow, err: lerr}))
			continue
		}
		if fresh {
			loaded[t.name] = entry
		}
	}

	r.mu.Lock()
	for _, t := range targets {
		slots := r.live
		if t.shadow {
			slots = r.shadow
		}
		s := slots[t.arch]
		if s == nil || s.path != t.path {
			// The slot was promoted or reconfigured while we read the
			// file; its content no longer corresponds to this target.
			continue
		}
		entry, ok := loaded[t.name]
		if !ok {
			continue
		}
		s.entry = entry
		s.err = nil
		changed = append(changed, t.name)
		if st := r.stats[t.arch]; st != nil {
			st.Reset()
		}
		if !t.shadow {
			// A new live model means new drift windows against its own
			// training baseline, and a fresh quality window — old
			// outcomes described the replaced model.
			r.installDriftLocked(t.arch, entry.Artifact)
			r.installQualityLocked(t.arch, entry.Artifact)
		}
	}
	// Record load failures on their slots for /readyz.
	for _, e := range errs {
		var le *loadError
		if errors.As(e, &le) {
			slots := r.live
			if le.shadow {
				slots = r.shadow
			}
			if s := slots[le.arch]; s != nil {
				s.err = le.err
			}
		}
	}
	r.mu.Unlock()

	if len(changed) > 0 {
		r.swaps.Add(int64(len(changed)))
		r.fireSwapHooks()
	}
	return changed, errors.Join(errs...)
}

// loadError tags a load failure with the slot it belongs to, so Reload
// can record it for readiness reporting.
type loadError struct {
	arch   string
	shadow bool
	err    error
}

func (e *loadError) Error() string { return e.err.Error() }
func (e *loadError) Unwrap() error { return e.err }

// loadEntry reads one artifact file. When its content hash equals
// oldHash the file is not decoded and fresh is false — the caller keeps
// the installed entry.
func loadEntry(path, oldHash string) (entry *Entry, fresh bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("reading artifact: %w", err)
	}
	hash := serve.HashBytes(data)
	if oldHash != "" && hash == oldHash {
		return nil, false, nil
	}
	art, err := serve.Load(bytes.NewReader(data))
	if err != nil {
		return nil, false, err
	}
	return &Entry{Artifact: art, Hash: hash, Path: path}, true, nil
}

// Promote atomically flips arch's shadow candidate to live: the
// candidate becomes the serving entry, its file becomes the slot's
// reload source, the shadow slot disappears and its tallies reset.
// Returns the new live hash.
func (r *Registry) Promote(arch string) (string, error) {
	a := serve.NormalizeArch(arch)
	r.mu.Lock()
	if a == "" {
		a = r.def
	}
	ls, ok := r.live[a]
	if !ok {
		r.mu.Unlock()
		return "", fmt.Errorf("registry: %w %q", serve.ErrUnknownArch, arch)
	}
	ss := r.shadow[a]
	if ss == nil {
		r.mu.Unlock()
		return "", fmt.Errorf("registry: no shadow candidate registered for %q", a)
	}
	if ss.entry == nil {
		r.mu.Unlock()
		return "", fmt.Errorf("registry: shadow candidate for %q is not loaded", a)
	}
	ls.entry = ss.entry
	ls.path = ss.path
	ls.err = nil
	delete(r.shadow, a)
	delete(r.stats, a)
	r.installDriftLocked(a, ls.entry.Artifact)
	r.installQualityLocked(a, ls.entry.Artifact)
	hash := ls.entry.Hash
	r.mu.Unlock()

	r.promotes.Inc()
	r.swaps.Inc()
	r.fireSwapHooks()
	return hash, nil
}

// ---------------------------------------------------------------------
// serve.Backend.

// DefaultArch returns the arch serving requests that name none.
func (r *Registry) DefaultArch() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Arches lists the configured live architectures, sorted.
func (r *Registry) Arches() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.archesLocked()
}

func (r *Registry) archesLocked() []string {
	out := make([]string, 0, len(r.live))
	for a := range r.live {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Live resolves arch ("" selects the default) to its serving model.
func (r *Registry) Live(arch string) (serve.LiveModel, error) {
	a := serve.NormalizeArch(arch)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a == "" {
		a = r.def
	}
	s, ok := r.live[a]
	if !ok {
		return serve.LiveModel{}, fmt.Errorf("registry: %w %q (serving: %v)",
			serve.ErrUnknownArch, arch, r.archesLocked())
	}
	if s.entry == nil {
		if s.err != nil {
			return serve.LiveModel{}, fmt.Errorf("registry: %w for %q: %v", serve.ErrNotLoaded, a, s.err)
		}
		return serve.LiveModel{}, fmt.Errorf("registry: %w for %q (still loading)", serve.ErrNotLoaded, a)
	}
	return serve.LiveModel{Arch: a, Hash: s.entry.Hash, Source: s.entry.Path, Artifact: s.entry.Artifact}, nil
}

// Shadow returns the loaded candidate for arch, when one is registered.
func (r *Registry) Shadow(arch string) (serve.LiveModel, bool) {
	a := serve.NormalizeArch(arch)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a == "" {
		a = r.def
	}
	s := r.shadow[a]
	if s == nil || s.entry == nil {
		return serve.LiveModel{}, false
	}
	return serve.LiveModel{Arch: a, Hash: s.entry.Hash, Source: s.entry.Path, Artifact: s.entry.Artifact}, true
}

// Ready returns nil once every configured live and shadow artifact has
// loaded, and otherwise an error naming a slot that has not.
func (r *Registry) Ready() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.live) == 0 {
		return fmt.Errorf("registry: no architectures configured")
	}
	for _, a := range r.archesLocked() {
		if s := r.live[a]; s.entry == nil {
			return notLoadedErr(a, s)
		}
	}
	for a, s := range r.shadow {
		if s.entry == nil {
			return notLoadedErr("shadow:"+a, s)
		}
	}
	return nil
}

func notLoadedErr(name string, s *slot) error {
	if s.err != nil {
		return fmt.Errorf("registry: %s failed to load: %v", name, s.err)
	}
	return fmt.Errorf("registry: %s not loaded yet", name)
}

// Status reports the per-arch load state, sorted by arch.
func (r *Registry) Status() []serve.ArchStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]serve.ArchStatus, 0, len(r.live))
	for _, a := range r.archesLocked() {
		s := r.live[a]
		st := serve.ArchStatus{Arch: a, Default: a == r.def, Source: s.path}
		if s.entry != nil {
			st.Loaded = true
			st.Hash = s.entry.Hash
		}
		if s.err != nil {
			st.Error = s.err.Error()
		}
		if ss := r.shadow[a]; ss != nil {
			st.Shadow = true
			if ss.entry != nil {
				st.ShadowHash = ss.entry.Hash
			}
		}
		out = append(out, st)
	}
	return out
}
