package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
	"repro/internal/sparse"
)

// TestStressHotSwapUnderLoad is the hot-swap correctness test: many
// goroutines hammer the single-matrix and batch prediction endpoints
// while another goroutine concurrently rewrites the artifact files,
// reloads, and promotes the shadow candidate. Every request must
// succeed and every response must carry a model hash that corresponds
// to one of the artifacts that was ever installed — a torn swap would
// surface as a failed request, an unknown hash, or a race report
// (this test is what `go test -race` is for).
func TestStressHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	vA := saveArtifact(t, dir, "a.gob", 10, 7)
	vB := saveArtifact(t, dir, "b.gob", 6, 2)
	vC := saveArtifact(t, dir, "c.gob", 12, 9)
	live := filepath.Join(dir, "live.gob")
	cand := filepath.Join(dir, "cand.gob")
	copyFile(t, vA, live)
	copyFile(t, vC, cand)

	known := map[string]bool{
		fileHash(t, vA): true,
		fileHash(t, vB): true,
		fileHash(t, vC): true,
	}

	r := New()
	if err := r.Configure("turing", live); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureShadow("turing", cand); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewBackendServer(r, serve.Config{
		AdminToken: "stress-token", MaxConcurrent: 16, MaxBatchItems: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.OnSwap(srv.FlushCache)
	h := srv.Handler()

	ms, _ := labelledCorpus(t)
	bodies := make([][]byte, 4)
	for i := range bodies {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, ms[i]); err != nil {
			t.Fatal(err)
		}
		bodies[i] = buf.Bytes()
	}
	batchBody, err := json.Marshal(map[string]any{
		"matrices": []string{string(bodies[0]), string(bodies[1]), string(bodies[2])},
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients  = 8
		requests = 40
		swapsN   = 30
	)
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The swapper: rewrite both artifact files, reload, and promote the
	// candidate once mid-run. Promotion re-points the live slot at the
	// candidate path, which the later iterations keep rewriting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		files := [2]string{vA, vB}
		for i := 0; i < swapsN; i++ {
			copyFile(t, files[i%2], live)
			copyFile(t, files[(i+1)%2], cand)
			if _, err := r.Reload(); err != nil {
				fail("reload %d: %v", i, err)
			}
			if i == swapsN/2 {
				if _, err := r.Promote("turing"); err != nil {
					fail("promote: %v", err)
				}
			}
		}
		close(stop)
	}()

	checkHash := func(kind string, i int, hash string) {
		if !known[hash] {
			fail("%s %d: response hash %q is not any installed artifact", kind, i, hash)
		}
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				if c%2 == 0 {
					req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix",
						bytes.NewReader(bodies[(c+i)%len(bodies)]))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					var out struct {
						Format    string `json:"format"`
						ModelHash string `json:"model_hash"`
					}
					if rec.Code != http.StatusOK {
						fail("matrix %d/%d: %d %s", c, i, rec.Code, rec.Body.String())
						continue
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Format == "" {
						fail("matrix %d/%d: bad body %q (%v)", c, i, rec.Body.String(), err)
						continue
					}
					checkHash("matrix", i, out.ModelHash)
				} else {
					req := httptest.NewRequest(http.MethodPost, "/v1/predict/batch",
						bytes.NewReader(batchBody))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						fail("batch %d/%d: %d %s", c, i, rec.Code, rec.Body.String())
						continue
					}
					var out struct {
						ModelHash string `json:"model_hash"`
						Errors    int    `json:"errors"`
						Results   []struct {
							Format string `json:"format"`
						} `json:"results"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						fail("batch %d/%d: bad body (%v)", c, i, err)
						continue
					}
					if out.Errors != 0 || len(out.Results) != 3 {
						fail("batch %d/%d: %d errors, %d results", c, i, out.Errors, len(out.Results))
					}
					checkHash("batch", i, out.ModelHash)
				}
			}
		}(c)
	}

	// One more goroutine polls the read-only surfaces the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/readyz", "/v1/model", "/v1/model?arch=turing"} {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
					fail("GET %s: %d", path, rec.Code)
				}
			}
			req := httptest.NewRequest(http.MethodGet, "/v1/admin/shadow", nil)
			req.Header.Set("Authorization", "Bearer stress-token")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				fail("shadow report: %d %s", rec.Code, rec.Body.String())
			}
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failed requests under concurrent hot-swap", n)
	}
	// The registry settles coherent: ready, serving a known hash.
	if err := r.Ready(); err != nil {
		t.Fatalf("not ready after stress: %v", err)
	}
	lm, err := r.Live("")
	if err != nil || !known[lm.Hash] {
		t.Fatalf("final live = %+v, %v", lm, err)
	}
	if fmt.Sprint(r.Arches()) != "[turing]" {
		t.Fatalf("arches = %v", r.Arches())
	}
}
