package registry

import (
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Measured prediction quality: the registry's half of the feedback
// loop. The serve layer joins /v1/feedback reports (measured per-format
// kernel times) to the predictions it served and hands the registry one
// Outcome per report; the registry keeps a per-arch rolling window of
// them and derives the paper's quality metrics online — top-1 accuracy
// (was the served format the measured-fastest?), oracle-slowdown
// ("regret", servedTime/bestTime) quantiles and geometric mean, and a
// predicted-vs-best confusion matrix. Windows reset on every live swap
// or promotion, so the report always describes the model currently
// answering traffic.
//
// Scores land in the obs registry as labeled vectors, refreshed by
// every QualityReport call (the /metrics handler runs one per scrape):
//
//	registry/quality/outcomes{arch}                counter  feedback outcomes accepted
//	registry/quality/accuracy{arch}                gauge    window top-1 accuracy
//	registry/quality/regret{arch,quantile}         gauge    oracle-slowdown p50/p90/p99
//	registry/quality/samples{arch}                 gauge    full outcomes in the window
//	registry/quality/confusion{arch,predicted,best} gauge   window predicted-vs-best counts

// QualityOptions tunes the quality windows. The zero value selects
// defaults.
type QualityOptions struct {
	// WindowSize is the per-arch rolling-window capacity (default 512
	// outcomes).
	WindowSize int
}

func (o QualityOptions) withDefaults() QualityOptions {
	if o.WindowSize <= 0 {
		o.WindowSize = 512
	}
	return o
}

// SetQualityOptions replaces the quality-window tuning. Existing
// windows are rebuilt empty on the next live swap; call it before
// LoadAll.
func (r *Registry) SetQualityOptions(o QualityOptions) {
	r.mu.Lock()
	r.qualityOpts = o.withDefaults()
	r.mu.Unlock()
}

// outcomeRec is one windowed outcome.
type outcomeRec struct {
	pred     int
	best     int // -1 when the sweep was not full
	regret   float64
	servedMs float64
	full     bool
}

// qualityState is one arch's rolling outcome window plus running
// tallies, so recording is O(1) and only the regret quantiles need a
// walk at report time.
type qualityState struct {
	mu      sync.Mutex
	formats []string
	ring    []outcomeRec
	head    int
	filled  int
	// Running window tallies, adjusted on eviction.
	fulls       int64
	hits        int64
	servedOnly  int64
	servedMsSum float64
	confusion   [numClasses * numClasses]int64
	// accepted counts every outcome since the window was installed
	// (not capped by the window).
	accepted int64
}

// add pushes one outcome, evicting the oldest when the window is full.
func (q *qualityState) add(rec outcomeRec) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.filled == len(q.ring) {
		q.evictLocked(q.ring[q.head])
	} else {
		q.filled++
	}
	q.ring[q.head] = rec
	q.head = (q.head + 1) % len(q.ring)
	q.accepted++
	q.servedMsSum += rec.servedMs
	if !rec.full {
		q.servedOnly++
		return
	}
	q.fulls++
	if rec.pred == rec.best {
		q.hits++
	}
	if rec.pred >= 0 && rec.pred < numClasses && rec.best >= 0 && rec.best < numClasses {
		q.confusion[rec.pred*numClasses+rec.best]++
	}
}

func (q *qualityState) evictLocked(old outcomeRec) {
	q.servedMsSum -= old.servedMs
	if !old.full {
		q.servedOnly--
		return
	}
	q.fulls--
	if old.pred == old.best {
		q.hits--
	}
	if old.pred >= 0 && old.pred < numClasses && old.best >= 0 && old.best < numClasses {
		q.confusion[old.pred*numClasses+old.best]--
	}
}

// installQualityLocked (re)builds arch's quality window for a newly
// installed live artifact. Called under the registry write lock on
// every live swap — reload and promote — so the window only ever
// tallies outcomes of the model currently serving.
func (r *Registry) installQualityLocked(arch string, art *serve.Artifact) {
	opts := r.qualityOpts.withDefaults()
	r.quality[arch] = &qualityState{
		formats: art.Formats,
		ring:    make([]outcomeRec, opts.WindowSize),
	}
}

// Quality metrics share the obs registry with everything else.
var (
	qualityOutcomes  = obs.Default.CounterVec("registry/quality/outcomes", "arch")
	qualityAccuracy  = obs.Default.GaugeVec("registry/quality/accuracy", "arch")
	qualityRegret    = obs.Default.GaugeVec("registry/quality/regret", "arch", "quantile")
	qualitySamples   = obs.Default.GaugeVec("registry/quality/samples", "arch")
	qualityConfusion = obs.Default.GaugeVec("registry/quality/confusion", "arch", "predicted", "best")
)

// RecordOutcome feeds one measured outcome into arch's quality window
// (serve.QualityBackend). Outcomes carrying a shadow candidate's
// measured time also advance the shadow report's measured tallies, so
// promote decisions can weigh measured quality, not just agreement. An
// outcome racing a swap (the window was just rebuilt) lands in the new
// window — the feedback describes traffic the operator still considers
// this arch's.
func (r *Registry) RecordOutcome(arch string, o serve.Outcome) {
	a := serve.NormalizeArch(arch)
	r.mu.RLock()
	if a == "" {
		a = r.def
	}
	q := r.quality[a]
	st := r.stats[a]
	r.mu.RUnlock()
	if q == nil {
		return
	}
	q.add(outcomeRec{
		pred:     o.Predicted.Label,
		best:     o.BestLabel,
		regret:   o.Regret,
		servedMs: o.ServedMs,
		full:     o.Full,
	})
	qualityOutcomes.With(a).Inc()
	if o.HasCandidate && st != nil {
		st.recordMeasured(o)
	}
}

// ArchQualityReport is one arch's measured-quality state.
type ArchQualityReport struct {
	Arch string `json:"arch"`
	// ModelHash identifies the live artifact the window describes.
	ModelHash string `json:"model_hash,omitempty"`
	// Accepted counts every outcome since the window was installed;
	// Samples (full sweeps) + ServedOnly is what the window holds now.
	Accepted   int64 `json:"accepted"`
	Samples    int64 `json:"samples"`
	ServedOnly int64 `json:"served_only"`
	// Accuracy is the window's top-1 rate: served format == measured
	// best (full outcomes only).
	Accuracy float64 `json:"accuracy"`
	// Regret quantiles and geometric mean over the window's full
	// outcomes: servedTime/bestTime, >= 1, 1 = the oracle pick.
	RegretP50 float64 `json:"regret_p50"`
	RegretP90 float64 `json:"regret_p90"`
	RegretP99 float64 `json:"regret_p99"`
	RegretGM  float64 `json:"regret_gm"`
	// MeanServedMs averages the measured served-format time over every
	// windowed outcome (full or not).
	MeanServedMs float64 `json:"mean_served_ms"`
	// Formats names the confusion grid axes; Confusion[i][j] counts
	// full outcomes predicted Formats[i] whose measured best was
	// Formats[j].
	Formats   []string  `json:"formats"`
	Confusion [][]int64 `json:"confusion"`
}

// QualityReportData is the full /v1/admin/quality answer.
type QualityReportData struct {
	WindowSize int                 `json:"window_size"`
	Arches     []ArchQualityReport `json:"arches"`
}

// QualityReport snapshots every arch's quality window and refreshes
// the quality gauges (serve.QualityBackend; the /metrics handler calls
// it per scrape).
func (r *Registry) QualityReport() any {
	opts := r.qualityOpts.withDefaults()
	report := QualityReportData{WindowSize: opts.WindowSize, Arches: []ArchQualityReport{}}

	r.mu.RLock()
	type archState struct {
		arch string
		hash string
		q    *qualityState
	}
	states := make([]archState, 0, len(r.quality))
	for _, a := range r.archesLocked() {
		q := r.quality[a]
		if q == nil {
			continue
		}
		as := archState{arch: a, q: q}
		if ls := r.live[a]; ls != nil && ls.entry != nil {
			as.hash = ls.entry.Hash
		}
		states = append(states, as)
	}
	r.mu.RUnlock()

	for _, as := range states {
		ar := as.q.report(as.arch, as.hash)
		qualityAccuracy.With(as.arch).Set(ar.Accuracy)
		qualityRegret.With(as.arch, "p50").Set(ar.RegretP50)
		qualityRegret.With(as.arch, "p90").Set(ar.RegretP90)
		qualityRegret.With(as.arch, "p99").Set(ar.RegretP99)
		qualitySamples.With(as.arch).Set(float64(ar.Samples))
		for i, f := range ar.Formats {
			for j, g := range ar.Formats {
				qualityConfusion.With(as.arch, f, g).Set(float64(ar.Confusion[i][j]))
			}
		}
		report.Arches = append(report.Arches, ar)
	}
	return report
}

// report snapshots one window.
func (q *qualityState) report(arch, hash string) ArchQualityReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	ar := ArchQualityReport{
		Arch:       arch,
		ModelHash:  hash,
		Accepted:   q.accepted,
		Samples:    q.fulls,
		ServedOnly: q.servedOnly,
		Formats:    q.formats,
	}
	if q.fulls > 0 {
		ar.Accuracy = float64(q.hits) / float64(q.fulls)
	}
	if n := q.fulls + q.servedOnly; n > 0 {
		ar.MeanServedMs = q.servedMsSum / float64(n)
	}
	// Walk the window once for the full outcomes' regrets (<= window
	// size floats; sorting them per report is cheap next to a scrape).
	regrets := make([]float64, 0, q.fulls)
	var logSum float64
	for k := 0; k < q.filled; k++ {
		rec := q.ring[(q.head-1-k+2*len(q.ring))%len(q.ring)]
		if rec.full && rec.regret > 0 {
			regrets = append(regrets, rec.regret)
			logSum += math.Log(rec.regret)
		}
	}
	if len(regrets) > 0 {
		sort.Float64s(regrets)
		// Ceil-rank quantiles: on a small window p99 must surface the
		// worst observed regret, not truncate down to the median.
		at := func(p float64) float64 {
			i := int(math.Ceil(p*float64(len(regrets)))) - 1
			if i < 0 {
				i = 0
			}
			return regrets[i]
		}
		ar.RegretP50 = at(0.50)
		ar.RegretP90 = at(0.90)
		ar.RegretP99 = at(0.99)
		ar.RegretGM = math.Exp(logSum / float64(len(regrets)))
	}
	grid := make([][]int64, numClasses)
	for i := range grid {
		grid[i] = make([]int64, numClasses)
		for j := range grid[i] {
			grid[i][j] = q.confusion[i*numClasses+j]
		}
	}
	ar.Confusion = grid
	return ar
}
