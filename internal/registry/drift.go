package registry

import (
	"math"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Drift monitoring: per-arch rolling windows of what the live model
// actually serves — predicted formats and a handful of key features —
// compared against the artifact's training baseline (serve.Baseline)
// with the Population Stability Index and a chi-square statistic. A
// model whose request stream no longer looks like its training corpus
// is drifting even when nothing errors; the drift report is the
// operator's early signal to retrain or to route traffic elsewhere.
//
// Every signal keeps its own ring so the format stream (advanced on
// every served answer, including cache hits) and the feature streams
// (advanced only when the request body was parsed) never desynchronise.
//
// Scores land in the obs registry as labeled gauges, refreshed by every
// DriftReport call (the /metrics handler runs one per scrape):
//
//	registry/drift/psi{arch,signal}   gauge  PSI of the window vs the baseline
//	registry/drift/chi2{arch,signal}  gauge  chi-square statistic
//	registry/drift/alert{arch}        gauge  1 when any signal's PSI >= threshold
//	registry/drift/samples{arch}      gauge  format-window fill

// DriftOptions tunes the monitor. The zero value selects defaults.
type DriftOptions struct {
	// WindowSize is the per-signal rolling-window capacity (default 512
	// observations).
	WindowSize int
	// PSIAlert is the PSI at or above which a signal alerts (default
	// 0.2 — the conventional "significant shift, investigate" bar; 0.1
	// is the conventional "moderate" bar).
	PSIAlert float64
	// MinSamples is the minimum window fill before a signal may alert,
	// keeping near-empty windows from paging anyone (default 50).
	MinSamples int
}

func (o DriftOptions) withDefaults() DriftOptions {
	if o.WindowSize <= 0 {
		o.WindowSize = 512
	}
	if o.PSIAlert <= 0 {
		o.PSIAlert = 0.2
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 50
	}
	return o
}

// SetDriftOptions replaces the monitor tuning. Existing per-arch
// windows are rebuilt empty on the next baseline install; call it
// before LoadAll.
func (r *Registry) SetDriftOptions(o DriftOptions) {
	r.mu.Lock()
	r.driftOpts = o.withDefaults()
	r.mu.Unlock()
}

// ringCounts is a fixed-capacity rolling histogram: a ring of bucket
// indices plus running per-bucket counts, so adding evicts the oldest
// observation in O(1) and the window distribution is always current.
type ringCounts struct {
	ring   []int
	head   int
	filled int
	counts []int64
	total  int64
}

func newRingCounts(buckets, window int) *ringCounts {
	return &ringCounts{ring: make([]int, window), counts: make([]int64, buckets)}
}

func (c *ringCounts) add(bucket int) {
	if bucket < 0 || bucket >= len(c.counts) {
		return
	}
	if c.filled == len(c.ring) {
		c.counts[c.ring[c.head]]--
		c.total--
	} else {
		c.filled++
	}
	c.ring[c.head] = bucket
	c.head = (c.head + 1) % len(c.ring)
	c.counts[bucket]++
	c.total++
}

// driftState is one arch's monitor: the live artifact's baseline plus
// one rolling window per signal.
type driftState struct {
	mu       sync.Mutex
	baseline *serve.Baseline
	formats  *ringCounts
	feats    []*ringCounts // parallel to baseline.Features
}

// installDriftLocked (re)builds arch's drift state for a newly
// installed live artifact. Called under the registry write lock on
// every live swap — reload and promote — so the windows always describe
// traffic served by the current model. Artifacts without a baseline
// clear the state (the arch opts out).
func (r *Registry) installDriftLocked(arch string, art *serve.Artifact) {
	if art == nil || art.Baseline == nil {
		delete(r.drift, arch)
		return
	}
	opts := r.driftOpts.withDefaults()
	b := art.Baseline
	st := &driftState{
		baseline: b,
		formats:  newRingCounts(len(b.FormatCounts), opts.WindowSize),
	}
	for _, fb := range b.Features {
		st.feats = append(st.feats, newRingCounts(len(fb.Counts), opts.WindowSize))
	}
	r.drift[arch] = st
}

// RecordServed feeds one served prediction into arch's monitor
// (serve.DriftBackend). vec is nil on cache hits; only the format
// stream advances then.
func (r *Registry) RecordServed(arch string, p serve.Prediction, vec []float64) {
	a := serve.NormalizeArch(arch)
	r.mu.RLock()
	if a == "" {
		a = r.def
	}
	st := r.drift[a]
	r.mu.RUnlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.formats.add(p.Label)
	if vec != nil {
		for i, fb := range st.baseline.Features {
			if fb.Index < len(vec) {
				st.feats[i].add(serve.BucketIndex(fb.Bounds, vec[fb.Index]))
			}
		}
	}
	st.mu.Unlock()
}

// psiChi2 scores an observed window against baseline counts. Both
// distributions are Laplace-smoothed ((n_i+0.5)/(N+0.5k)) so an empty
// bucket on either side cannot blow the logarithm up; chi2 compares
// observed counts against the expectation the baseline implies for the
// window size.
func psiChi2(baseline, observed []int64) (psi, chi2 float64) {
	k := len(baseline)
	if k == 0 || k != len(observed) {
		return 0, 0
	}
	var bn, on int64
	for i := 0; i < k; i++ {
		bn += baseline[i]
		on += observed[i]
	}
	if bn == 0 || on == 0 {
		return 0, 0
	}
	for i := 0; i < k; i++ {
		e := (float64(baseline[i]) + 0.5) / (float64(bn) + 0.5*float64(k))
		o := (float64(observed[i]) + 0.5) / (float64(on) + 0.5*float64(k))
		psi += (o - e) * math.Log(o/e)
		exp := e * float64(on)
		d := float64(observed[i]) - exp
		chi2 += d * d / exp
	}
	return psi, chi2
}

// DriftSignal is one scored signal of one arch.
type DriftSignal struct {
	// Signal is "format" or a tracked feature name ("nnz_mu", ...).
	Signal string `json:"signal"`
	// Samples is the rolling-window fill for this signal.
	Samples int64 `json:"samples"`
	// PSI is the Population Stability Index of the window against the
	// training baseline (rule of thumb: <0.1 stable, 0.1-0.2 moderate,
	// >=0.2 significant shift).
	PSI float64 `json:"psi"`
	// Chi2 is the chi-square statistic over the same buckets.
	Chi2 float64 `json:"chi2"`
	// Alert marks PSI >= the threshold with enough samples.
	Alert bool `json:"alert"`
}

// ArchDriftReport is one arch's drift state.
type ArchDriftReport struct {
	Arch string `json:"arch"`
	// ModelHash identifies the live artifact the baseline came from.
	ModelHash string `json:"model_hash,omitempty"`
	// Alert is true when any signal alerts.
	Alert   bool          `json:"alert"`
	Signals []DriftSignal `json:"signals"`
}

// DriftReportData is the full /v1/admin/drift answer.
type DriftReportData struct {
	WindowSize int `json:"window_size"`
	// PSIAlert and MinSamples echo the thresholds the alerts used.
	PSIAlert   float64           `json:"psi_alert"`
	MinSamples int               `json:"min_samples"`
	Arches     []ArchDriftReport `json:"arches"`
}

// Drift gauges share the obs registry with everything else.
var (
	driftPSI     = obs.Default.GaugeVec("registry/drift/psi", "arch", "signal")
	driftChi2    = obs.Default.GaugeVec("registry/drift/chi2", "arch", "signal")
	driftAlert   = obs.Default.GaugeVec("registry/drift/alert", "arch")
	driftSamples = obs.Default.GaugeVec("registry/drift/samples", "arch")
)

// DriftReport scores every monitored arch and refreshes the drift
// gauges (serve.DriftBackend; the /metrics handler calls it per
// scrape).
func (r *Registry) DriftReport() any {
	opts := r.driftOpts.withDefaults()
	report := DriftReportData{
		WindowSize: opts.WindowSize,
		PSIAlert:   opts.PSIAlert,
		MinSamples: opts.MinSamples,
		Arches:     []ArchDriftReport{},
	}

	r.mu.RLock()
	type archState struct {
		arch string
		hash string
		st   *driftState
	}
	states := make([]archState, 0, len(r.drift))
	for _, a := range r.archesLocked() {
		st := r.drift[a]
		if st == nil {
			continue
		}
		as := archState{arch: a, st: st}
		if ls := r.live[a]; ls != nil && ls.entry != nil {
			as.hash = ls.entry.Hash
		}
		states = append(states, as)
	}
	r.mu.RUnlock()

	for _, as := range states {
		ar := ArchDriftReport{Arch: as.arch, ModelHash: as.hash}
		as.st.mu.Lock()
		signals := make([]DriftSignal, 0, 1+len(as.st.baseline.Features))
		psi, chi2 := psiChi2(as.st.baseline.FormatCounts, as.st.formats.counts)
		signals = append(signals, DriftSignal{
			Signal: "format", Samples: as.st.formats.total, PSI: psi, Chi2: chi2,
			Alert: psi >= opts.PSIAlert && as.st.formats.total >= int64(opts.MinSamples),
		})
		for i, fb := range as.st.baseline.Features {
			w := as.st.feats[i]
			p, c := psiChi2(fb.Counts, w.counts)
			signals = append(signals, DriftSignal{
				Signal: fb.Name, Samples: w.total, PSI: p, Chi2: c,
				Alert: p >= opts.PSIAlert && w.total >= int64(opts.MinSamples),
			})
		}
		formatSamples := as.st.formats.total
		as.st.mu.Unlock()

		for _, sg := range signals {
			driftPSI.With(as.arch, sg.Signal).Set(sg.PSI)
			driftChi2.With(as.arch, sg.Signal).Set(sg.Chi2)
			ar.Alert = ar.Alert || sg.Alert
		}
		ar.Signals = signals
		alertVal := 0.0
		if ar.Alert {
			alertVal = 1
		}
		driftAlert.With(as.arch).Set(alertVal)
		driftSamples.With(as.arch).Set(float64(formatSamples))
		report.Arches = append(report.Arches, ar)
	}
	return report
}
