package registry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
	"repro/internal/sparse"
)

// TestStressFeatMemoAcrossSwaps drives the feature-vector memo under
// exactly the conditions it exists for — repeat bodies arriving across
// concurrent hot-swaps and a promotion — with the prediction cache
// disabled so every repeat must go through the memo. A tiny memo
// capacity forces concurrent evictions (hits and misses interleave),
// and every answer is checked against the prediction the responding
// artifact computes for that body offline: a memoized feature vector
// feeding the wrong model, or a torn entry, would surface as a wrong
// format or a -race report.
func TestStressFeatMemoAcrossSwaps(t *testing.T) {
	dir := t.TempDir()
	vA := saveArtifact(t, dir, "a.gob", 10, 7)
	vB := saveArtifact(t, dir, "b.gob", 6, 2)
	live := filepath.Join(dir, "live.gob")
	cand := filepath.Join(dir, "cand.gob")
	copyFile(t, vA, live)
	copyFile(t, vB, cand)

	ms, _ := labelledCorpus(t)
	const nBodies = 6
	bodies := make([][]byte, nBodies)
	for i := range bodies {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, ms[i]); err != nil {
			t.Fatal(err)
		}
		bodies[i] = buf.Bytes()
	}

	// Ground truth: what each installed artifact answers for each body,
	// computed outside the server. hash -> body index -> format.
	expect := map[string][]string{}
	for _, path := range []string{vA, vB} {
		art, err := serve.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		formats := make([]string, nBodies)
		for i := range bodies {
			m, err := sparse.ReadMatrixMarketBytes(bodies[i])
			if err != nil {
				t.Fatal(err)
			}
			pred, err := art.PredictMatrix(m)
			if err != nil {
				t.Fatal(err)
			}
			formats[i] = pred.Format
		}
		expect[fileHash(t, path)] = formats
	}

	r := New()
	if err := r.Configure("turing", live); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureShadow("turing", cand); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewBackendServer(r, serve.Config{
		MaxConcurrent: 16,
		CacheSize:     -1, // repeats must take the memo, not the prediction LRU
		FeatMemoSize:  4,  // smaller than the body set: constant eviction churn
	})
	if err != nil {
		t.Fatal(err)
	}
	r.OnSwap(srv.FlushCache)
	h := srv.Handler()
	hits0, misses0 := srv.FeatMemoStats() // counters are process-global

	const (
		clients  = 8
		requests = 60
		swapsN   = 25
	)
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		files := [2]string{vA, vB}
		for i := 0; i < swapsN; i++ {
			copyFile(t, files[i%2], live)
			copyFile(t, files[(i+1)%2], cand)
			if _, err := r.Reload(); err != nil {
				fail("reload %d: %v", i, err)
			}
			if i == swapsN/2 {
				if _, err := r.Promote("turing"); err != nil {
					fail("promote: %v", err)
				}
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				bi := (c + i) % nBodies
				req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix",
					bytes.NewReader(bodies[bi]))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					fail("client %d req %d: %d %s", c, i, rec.Code, rec.Body.String())
					continue
				}
				var out struct {
					Format    string `json:"format"`
					ModelHash string `json:"model_hash"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					fail("client %d req %d: bad body %q (%v)", c, i, rec.Body.String(), err)
					continue
				}
				want, ok := expect[out.ModelHash]
				if !ok {
					fail("client %d req %d: unknown model hash %q", c, i, out.ModelHash)
					continue
				}
				if out.Format != want[bi] {
					fail("client %d req %d: body %d served %q by model %s, want %q — memoized features answered for the wrong body or model",
						c, i, bi, out.Format, out.ModelHash, want[bi])
				}
			}
		}(c)
	}

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failures under concurrent memo traffic and swaps", n)
	}

	// The memo did real work: with the prediction cache off and only 6
	// distinct bodies for 480 requests, hits must vastly outnumber
	// bodies, and swaps must not have emptied it.
	hits, misses := srv.FeatMemoStats()
	hits, misses = hits-hits0, misses-misses0
	if hits == 0 {
		t.Fatal("no feature-memo hits across 480 repeat-heavy requests")
	}
	if misses == 0 {
		t.Fatal("no feature-memo misses despite eviction-forcing capacity")
	}
	t.Logf("featmemo: %d hits, %d misses", hits, misses)
}
