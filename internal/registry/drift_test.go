package registry

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// saveBaselineArtifact trains a semisup artifact like saveArtifact but
// attaches the training baseline, arming the drift monitor.
func saveBaselineArtifact(t *testing.T, dir, name string) string {
	t.Helper()
	ms, best := labelledCorpus(t)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), "Turing")
	y := make([]int, len(best))
	for i, f := range best {
		for k, kf := range sparse.KernelFormats() {
			if kf == f {
				y[i] = k
			}
		}
	}
	art.Baseline = serve.ComputeBaseline(features.Matrix(features.ExtractAll(ms)), y, sparse.NumKernelFormats)
	path := filepath.Join(dir, name)
	if err := serve.SaveFile(path, art); err != nil {
		t.Fatal(err)
	}
	return path
}

func driftArch(t *testing.T, rep DriftReportData, arch string) ArchDriftReport {
	t.Helper()
	for _, a := range rep.Arches {
		if a.Arch == arch {
			return a
		}
	}
	t.Fatalf("arch %q missing from drift report", arch)
	return ArchDriftReport{}
}

func driftSignal(t *testing.T, ar ArchDriftReport, name string) DriftSignal {
	t.Helper()
	for _, s := range ar.Signals {
		if s.Signal == name {
			return s
		}
	}
	t.Fatalf("signal %q missing from %+v", name, ar)
	return DriftSignal{}
}

// TestDriftBaselineRoundTrip: the baseline survives the gob save/load
// cycle and arms the monitor on LoadAll.
func TestDriftBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := saveBaselineArtifact(t, dir, "turing.gob")
	art, err := serve.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Baseline == nil {
		t.Fatal("baseline lost in save/load round trip")
	}
	if err := art.Baseline.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(art.Baseline.Features) == 0 {
		t.Fatal("baseline tracks no features")
	}

	r := New()
	if err := r.Configure("turing", path); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	rep := r.DriftReport().(DriftReportData)
	ar := driftArch(t, rep, "turing")
	if ar.Alert {
		t.Error("empty windows alert")
	}
	if s := driftSignal(t, ar, "format"); s.Samples != 0 {
		t.Errorf("fresh monitor has %d samples", s.Samples)
	}
}

// TestDriftAlertsOnSkewedStream is the tentpole acceptance test: a
// served stream matching the training distribution stays quiet; a
// stream skewed to one format and out-of-range features flips the
// report to alert.
func TestDriftAlertsOnSkewedStream(t *testing.T) {
	dir := t.TempDir()
	path := saveBaselineArtifact(t, dir, "turing.gob")
	r := New()
	r.SetDriftOptions(DriftOptions{WindowSize: 256, PSIAlert: 0.2, MinSamples: 50})
	if err := r.Configure("turing", path); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	lm, err := r.Live("turing")
	if err != nil {
		t.Fatal(err)
	}
	base := lm.Artifact.Baseline

	// Phase 1: replay the training distribution — labels proportional to
	// the baseline counts, features drawn from each baseline bucket in
	// proportion. PSI over the same distribution must stay far below the
	// alert bar.
	var total int64
	for _, c := range base.FormatCounts {
		total += c
	}
	var stream []int
	for label, c := range base.FormatCounts {
		n := int(200 * float64(c) / float64(total))
		for i := 0; i < n; i++ {
			stream = append(stream, label)
		}
	}
	for j, label := range stream {
		r.RecordServed("turing", serve.Prediction{Label: label}, trainingLikeVec(base, j))
	}
	rep := r.DriftReport().(DriftReportData)
	ar := driftArch(t, rep, "turing")
	if ar.Alert {
		t.Fatalf("training-like stream alerted: %+v", ar.Signals)
	}

	// Phase 2: skew — every answer is label 0 and every feature sits far
	// beyond the training range (overflow buckets).
	huge := make([]float64, features.Count)
	for i := range huge {
		huge[i] = 1e18
	}
	for i := 0; i < 300; i++ {
		r.RecordServed("turing", serve.Prediction{Label: 0}, huge)
	}
	rep = r.DriftReport().(DriftReportData)
	ar = driftArch(t, rep, "turing")
	if !ar.Alert {
		t.Fatalf("skewed stream did not alert: %+v", ar.Signals)
	}
	if s := driftSignal(t, ar, "nnz_mu"); !s.Alert || s.PSI < 0.2 {
		t.Errorf("feature signal did not alert: %+v", s)
	}
	if s := driftSignal(t, ar, "format"); s.Samples == 0 {
		t.Errorf("format stream empty: %+v", s)
	}
}

// trainingLikeVec returns a feature vector whose tracked features land
// in baseline bucket (i mod buckets), cycling through the training
// distribution's support.
func trainingLikeVec(base *serve.Baseline, i int) []float64 {
	vec := make([]float64, features.Count)
	for _, fb := range base.Features {
		if len(fb.Bounds) == 0 {
			continue
		}
		// Weighted cycling: pick the bucket proportionally via the counts.
		var total int64
		for _, c := range fb.Counts {
			total += c
		}
		target := int64(i) % total
		bucket := 0
		var acc int64
		for b, c := range fb.Counts {
			acc += c
			if target < acc {
				bucket = b
				break
			}
		}
		if bucket < len(fb.Bounds) {
			vec[fb.Index] = fb.Bounds[bucket]
		} else {
			vec[fb.Index] = fb.Bounds[len(fb.Bounds)-1] * 2
		}
	}
	return vec
}

// TestDriftStateResetsOnSwap: a hot-swap installs fresh windows for the
// new model's baseline.
func TestDriftStateResetsOnSwap(t *testing.T) {
	dir := t.TempDir()
	path := saveBaselineArtifact(t, dir, "turing.gob")
	r := New()
	if err := r.Configure("turing", path); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r.RecordServed("turing", serve.Prediction{Label: 0}, nil)
	}
	ar := driftArch(t, r.DriftReport().(DriftReportData), "turing")
	if s := driftSignal(t, ar, "format"); s.Samples != 60 {
		t.Fatalf("format samples = %d, want 60", s.Samples)
	}
	// Swap to a different artifact file: the windows must restart.
	other := saveArtifact(t, dir, "other.gob", 8, 3) // no baseline
	copyFile(t, other, path)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	rep := r.DriftReport().(DriftReportData)
	if len(rep.Arches) != 0 {
		t.Errorf("baseline-less artifact still monitored: %+v", rep.Arches)
	}
	// RecordServed on an unmonitored arch is a safe no-op.
	r.RecordServed("turing", serve.Prediction{Label: 0}, nil)
}

// TestRingCountsEviction: the rolling window forgets old observations.
func TestRingCountsEviction(t *testing.T) {
	c := newRingCounts(3, 4)
	for i := 0; i < 4; i++ {
		c.add(0)
	}
	if c.counts[0] != 4 || c.total != 4 {
		t.Fatalf("fill: %+v", c)
	}
	for i := 0; i < 4; i++ {
		c.add(2)
	}
	if c.counts[0] != 0 || c.counts[2] != 4 || c.total != 4 {
		t.Errorf("eviction: counts=%v total=%d", c.counts, c.total)
	}
	c.add(-1) // out of range: ignored
	c.add(3)
	if c.total != 4 {
		t.Errorf("out-of-range buckets counted: %+v", c)
	}
}

func TestPSIChi2(t *testing.T) {
	// Identical distributions: PSI ~ 0.
	psi, chi2 := psiChi2([]int64{50, 30, 20}, []int64{500, 300, 200})
	if psi > 0.001 {
		t.Errorf("identical distributions: psi=%v", psi)
	}
	if chi2 > 1 {
		t.Errorf("identical distributions: chi2=%v", chi2)
	}
	// Total mass shift: PSI far above the alert bar.
	psi, chi2 = psiChi2([]int64{100, 0, 0}, []int64{0, 0, 100})
	if psi < 1 {
		t.Errorf("total shift: psi=%v", psi)
	}
	if chi2 < 100 {
		t.Errorf("total shift: chi2=%v", chi2)
	}
	// Degenerate inputs are quiet zeros, not NaNs.
	if psi, chi2 = psiChi2(nil, nil); psi != 0 || chi2 != 0 {
		t.Error("nil inputs")
	}
	if psi, chi2 = psiChi2([]int64{1}, []int64{0}); psi != 0 || chi2 != 0 {
		t.Error("empty observed window should score 0")
	}
}
