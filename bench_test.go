// Package repro's top-level benchmark harness: one benchmark per paper
// table (Tables 3-9 are computed; Tables 1-2 are static catalogues),
// ablation benchmarks for the design choices called out in DESIGN.md,
// and substrate micro-benchmarks for the SpMV kernels themselves.
//
// The table benchmarks run the evaluation at the reduced QuickOptions
// scale so `go test -bench=.` finishes in minutes; the full paper-scale
// tables are regenerated with `go run ./cmd/spmvselect tables`. Key
// quality numbers are attached to the benchmark output via
// b.ReportMetric (MCC etc.), so the harness doubles as a regression
// tracker for result shape, not just speed.
package repro

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

var (
	envOnce sync.Once
	envVal  *eval.Env
	envErr  error
)

// benchEnv builds the shared quick-scale environment once.
func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = eval.NewEnv(context.Background(), eval.QuickOptions())
	})
	if envErr != nil {
		b.Fatalf("building environment: %v", envErr)
	}
	return envVal
}

// BenchmarkTable3 regenerates the best-format distribution (Table 3).
func BenchmarkTable3(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.Table3(env)
		if i == b.N-1 {
			csrShare := float64(rows[0].Counts[1]) / float64(rows[0].Total)
			b.ReportMetric(csrShare, "csr-share-pascal")
			b.ReportMetric(rows[2].MaxSlowdown, "max-csr-slowdown-turing")
		}
	}
}

// BenchmarkTable4 regenerates the semi-supervised local evaluation.
func BenchmarkTable4(b *testing.B) {
	env := benchEnv(b)
	opt := eval.QuickOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table4(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(bestMCC(rows, "Turing", "K-Means"), "kmeans-mcc-turing")
			b.ReportMetric(bestMCC(rows, "Turing", "Mean-Shift"), "meanshift-mcc-turing")
		}
	}
}

func bestMCC(rows []eval.Table4Row, arch, algoPrefix string) float64 {
	best := -2.0
	for _, r := range rows {
		if r.Arch == arch && strings.HasPrefix(r.Algo, algoPrefix) && r.M.MCC > best {
			best = r.M.MCC
		}
	}
	return best
}

// BenchmarkTable5 regenerates the semi-supervised transfer evaluation.
func BenchmarkTable5(b *testing.B) {
	env := benchEnv(b)
	opt := eval.QuickOptions()
	opt.Folds = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table5(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var acc0, acc50 float64
			for _, r := range rows {
				acc0 += r.M[0].ACC
				acc50 += r.M[2].ACC
			}
			b.ReportMetric(acc0/float64(len(rows)), "mean-acc-0pct")
			b.ReportMetric(acc50/float64(len(rows)), "mean-acc-50pct")
		}
	}
}

// BenchmarkTable6 regenerates the supervised local evaluation.
func BenchmarkTable6(b *testing.B) {
	env := benchEnv(b)
	opt := eval.QuickOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table6(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Arch == "Turing" && r.Model == "XGBoost" {
					b.ReportMetric(r.M.MCC, "xgboost-mcc-turing")
					b.ReportMetric(r.M.CSR, "xgboost-csr-speedup")
				}
			}
		}
	}
}

// BenchmarkTable7 regenerates the supervised transfer evaluation.
func BenchmarkTable7(b *testing.B) {
	env := benchEnv(b)
	opt := eval.QuickOptions()
	opt.Folds = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table7(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var gain float64
			for _, r := range rows {
				gain += r.M[2].ACC - r.M[0].ACC
			}
			b.ReportMetric(gain/float64(len(rows)), "mean-retrain-gain")
		}
	}
}

// BenchmarkTable8 regenerates the benchmarking-cost model.
func BenchmarkTable8(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.Table8(env)
		if i == b.N-1 {
			b.ReportMetric(r.Hours["Pascal"], "pascal-bench-hours")
		}
	}
}

// BenchmarkTable9 regenerates the training-time comparison.
func BenchmarkTable9(b *testing.B) {
	env := benchEnv(b)
	opt := eval.QuickOptions()
	opt.CNNEpochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table9(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var cnn, km float64
			for _, r := range rows {
				switch r.Model {
				case "CNN":
					cnn = r.Secs[0]
				case "K-Means-VOTE":
					km = r.Secs[0]
				}
			}
			if km > 0 {
				b.ReportMetric(cnn/km, "cnn-over-kmeans-cost")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.

// ablationMCC trains K-Means-VOTE under the given semisup config on
// Turing and returns the CV MCC.
func ablationMCC(b *testing.B, env *eval.Env, mutate func(*semisup.Config)) float64 {
	b.Helper()
	d := env.Corpus.PerArch["Turing"]
	folds := eval.StratifiedFolds(d.Labels, 3, 1)
	var truth, pred []int
	for f, test := range folds {
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var tx [][]float64
		var ty []int
		for i := 0; i < d.Len(); i++ {
			if !inTest[i] {
				tx = append(tx, d.Feats[i])
				ty = append(ty, d.Labels[i])
			}
		}
		cfg := semisup.Config{NumClusters: 40, Seed: int64(f)}
		mutate(&cfg)
		m, err := semisup.Train(tx, ty, sparse.NumKernelFormats, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, i := range test {
			truth = append(truth, d.Labels[i])
			pred = append(pred, m.Predict(d.Feats[i]))
		}
	}
	c, err := metrics.NewConfusion(truth, pred, sparse.NumKernelFormats)
	if err != nil {
		b.Fatal(err)
	}
	return c.MCC()
}

// BenchmarkAblationLogTransform compares the paper's log/sqrt transform
// against raw features — the paper's key preprocessing insight.
func BenchmarkAblationLogTransform(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := ablationMCC(b, env, func(c *semisup.Config) {})
		without := ablationMCC(b, env, func(c *semisup.Config) { c.Preprocess.SkipSkew = true })
		if i == b.N-1 {
			b.ReportMetric(with, "mcc-with-log")
			b.ReportMetric(without, "mcc-without-log")
		}
	}
}

// BenchmarkAblationPCA compares PCA(8) against the full scaled feature
// space.
func BenchmarkAblationPCA(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := ablationMCC(b, env, func(c *semisup.Config) {})
		without := ablationMCC(b, env, func(c *semisup.Config) { c.Preprocess.SkipPCA = true })
		if i == b.N-1 {
			b.ReportMetric(with, "mcc-with-pca")
			b.ReportMetric(without, "mcc-without-pca")
		}
	}
}

// BenchmarkAblationNumClusters sweeps K, the accuracy/cost trade-off the
// paper discusses at length.
func BenchmarkAblationNumClusters(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{10, 40, 160} {
			mcc := ablationMCC(b, env, func(c *semisup.Config) { c.NumClusters = k })
			if i == b.N-1 {
				b.ReportMetric(mcc, "mcc-k"+itoa(k))
			}
		}
	}
}

// BenchmarkAblationBenchmarkFraction sweeps the fraction of matrices
// benchmarked per cluster (the paper's one-matrix-per-cluster economy).
func BenchmarkAblationBenchmarkFraction(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.1, 0.5, 1.0} {
			mcc := ablationMCC(b, env, func(c *semisup.Config) { c.BenchmarkFraction = frac })
			if i == b.N-1 {
				b.ReportMetric(mcc, "mcc-frac"+itoa(int(frac*100)))
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkExtensionFiveFormats measures the extension experiment: how
// the best-format distribution shifts when sliced ELLPACK (SELL) joins
// the paper's four candidate formats. SELL's bounded per-slice padding
// should capture a share of both ELL's and CSR's wins on moderately
// irregular matrices.
func BenchmarkExtensionFiveFormats(b *testing.B) {
	env := benchEnv(b)
	fiveFormats := append(sparse.KernelFormats(), sparse.FormatSELL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sellWins, total := 0, 0
		for idx, p := range env.Corpus.Profiles {
			_ = idx
			bestF, bestT := sparse.FormatCSR, 0.0
			ok := true
			for _, f := range fiveFormats {
				t, err := gpusim.Turing.KernelTime(p, f)
				if err != nil {
					ok = false
					break
				}
				if bestT == 0 || t < bestT {
					bestT = t
					bestF = f
				}
			}
			if !ok {
				continue
			}
			total++
			if bestF == sparse.FormatSELL {
				sellWins++
			}
		}
		if i == b.N-1 && total > 0 {
			b.ReportMetric(float64(sellWins)/float64(total), "sell-win-share")
		}
	}
}

// BenchmarkAblationRCMReordering measures how reverse Cuthill-McKee
// reordering changes the modelled SpMV cost: restoring locality shrinks
// the matrix bandwidth, the x-gather hits cache, and the predicted CSR
// time drops — the reordering/format interplay the paper's related work
// discusses.
func BenchmarkAblationRCMReordering(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	type pair struct{ before, after gpusim.Profile }
	var pairs []pair
	for k := 0; k < 3; k++ {
		// Large banded matrices: locality only matters once the x vector
		// outgrows the L2 cache (2 MiB on Pascal), i.e. past ~260k
		// columns.
		rows := 400_000
		band := 3 + k
		tr := sparse.NewTriplet(rows, rows)
		for i := 0; i < rows; i++ {
			for j := i - band; j <= i+band; j++ {
				if j >= 0 && j < rows {
					if err := tr.Add(i, j, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		m := tr.ToCSR()
		shuffle := rng.Perm(rows)
		shuffled, err := m.Permute(shuffle, shuffle)
		if err != nil {
			b.Fatal(err)
		}
		perm, err := sparse.RCM(shuffled)
		if err != nil {
			b.Fatal(err)
		}
		restored, err := shuffled.Permute(perm, perm)
		if err != nil {
			b.Fatal(err)
		}
		pairs = append(pairs, pair{gpusim.NewProfile(shuffled), gpusim.NewProfile(restored)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var speedup float64
		for _, p := range pairs {
			tb, err1 := gpusim.Pascal.KernelTime(p.before, sparse.FormatCSR)
			ta, err2 := gpusim.Pascal.KernelTime(p.after, sparse.FormatCSR)
			if err1 != nil || err2 != nil {
				b.Fatal(err1, err2)
			}
			speedup += tb / ta
		}
		if i == b.N-1 {
			b.ReportMetric(speedup/float64(len(pairs)), "csr-speedup-after-rcm")
		}
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks: the SpMV kernels and the feature pass.

// benchMatrix builds a mid-size scale-free matrix once.
var (
	benchMatOnce sync.Once
	benchMat     *sparse.CSR
)

func benchMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	benchMatOnce.Do(func() {
		// Banded: the one family every format (including ELL) can store,
		// so the per-format comparison has no gaps.
		rng := rand.New(rand.NewSource(1))
		benchMat = dataset.FamilyBanded.Generate(rng, 0.6)
	})
	return benchMat
}

// BenchmarkSpMV measures the CPU SpMV kernels per format.
func BenchmarkSpMV(b *testing.B) {
	m := benchMatrix(b)
	_, cols := m.Dims()
	rows, _ := m.Dims()
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, rows)
	for _, f := range sparse.KernelFormats() {
		conv, err := sparse.Convert(m, f)
		if err != nil {
			b.Logf("skipping %v: %v", f, err)
			continue
		}
		b.Run(f.String(), func(b *testing.B) {
			b.SetBytes(int64(m.NNZ() * 12))
			for i := 0; i < b.N; i++ {
				if err := conv.SpMV(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("CSR-parallel", func(b *testing.B) {
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			if err := m.SpMVParallel(y, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFeatureExtract measures the O(nnz) Table 1 feature pass.
func BenchmarkFeatureExtract(b *testing.B) {
	m := benchMatrix(b)
	b.SetBytes(int64(m.NNZ() * 12))
	for i := 0; i < b.N; i++ {
		_ = features.Extract(m)
	}
}

// BenchmarkObsOverhead proves the observability layer is free when no
// sink is registered: a full obs.Start/End span pair on the disabled
// path must stay under 2 ns/op with zero allocations (ci.sh runs this
// benchmark on every check). The same guard exists next to the
// implementation in internal/obs; this copy keeps the repo-root
// `go test -bench BenchmarkObsOverhead` invocation meaningful.
func BenchmarkObsOverhead(b *testing.B) {
	if obs.Enabled() {
		b.Fatal("observability unexpectedly enabled")
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.Start(ctx, "bench/disabled")
		sp.End()
	}
}

// BenchmarkKernelModel measures the analytical GPU cost model.
func BenchmarkKernelModel(b *testing.B) {
	m := benchMatrix(b)
	p := gpusim.NewProfile(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range sparse.KernelFormats() {
			if _, err := gpusim.Turing.KernelTime(p, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTablesParallel times the scheduled tables (4-7) end to end
// with the scheduler pinned to one worker versus eight — the measurement
// behind BENCH_parallel.json (`spmvselect benchpar` regenerates that
// file and additionally byte-compares the rendered output). GOMAXPROCS
// is raised for the parallel case so the workers can actually interleave
// even when the host reports a single CPU.
func BenchmarkTablesParallel(b *testing.B) {
	env := benchEnv(b)
	run := func(b *testing.B, workers int) {
		prev := obs.SetMaxWorkers(workers)
		defer obs.SetMaxWorkers(prev)
		opt := eval.QuickOptions()
		opt.Workers = workers
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Table4(ctx, env, opt); err != nil {
				b.Fatal(err)
			}
			if _, err := eval.Table5(ctx, env, opt); err != nil {
				b.Fatal(err)
			}
			if _, err := eval.Table6(ctx, env, opt); err != nil {
				b.Fatal(err)
			}
			if _, err := eval.Table7(ctx, env, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel-8", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
		run(b, 8)
	})
}
