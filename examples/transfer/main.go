// Transfer: port a trained selector from one GPU to another.
//
// This example reproduces the paper's transfer-learning story end to
// end: a selector trained on Pascal is evaluated on Volta as-is (0%
// retraining), then ported by re-benchmarking growing fractions of the
// training matrices on Volta and relabelling the clusters. The clusters
// themselves never change — only the per-cluster format labels do,
// which is why porting is cheap.
//
// Run with: go run ./examples/transfer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	src, tgt := gpusim.Pascal, gpusim.Volta
	fmt.Printf("== Transfer: %s -> %s\n\n", src.Name, tgt.Name)

	items, err := dataset.Generate(dataset.Config{
		Seed: 7, BaseCount: 280, AugmentPerBase: 0, Scale: 0.5,
		DropELLFailures: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Matrices feasible on both GPUs, with both label sets — the paper's
	// "common subset".
	var ms []*sparse.CSR
	var labSrc, labTgt []sparse.Format
	for _, it := range items {
		p := gpusim.NewProfile(it.Matrix)
		mSrc := src.Measure(it.Name, p)
		mTgt := tgt.Measure(it.Name, p)
		if !mSrc.Feasible() || !mTgt.Feasible() {
			continue
		}
		fs, _ := mSrc.BestFormat()
		ft, _ := mTgt.BestFormat()
		ms = append(ms, it.Matrix)
		labSrc = append(labSrc, fs)
		labTgt = append(labTgt, ft)
	}
	cut := len(ms) * 7 / 10
	fmt.Printf("common subset: %d matrices (%d train, %d test)\n",
		len(ms), cut, len(ms)-cut)

	agree := 0
	for i := range ms {
		if labSrc[i] == labTgt[i] {
			agree++
		}
	}
	fmt.Printf("label agreement between %s and %s: %.1f%%\n\n",
		src.Name, tgt.Name, 100*float64(agree)/float64(len(ms)))

	sel, err := core.TrainSelector(ms[:cut], labSrc[:cut], core.Options{NumClusters: 60, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	score := func() float64 {
		hit := 0
		for i := cut; i < len(ms); i++ {
			if sel.Select(ms[i]) == labTgt[i] {
				hit++
			}
		}
		return 100 * float64(hit) / float64(len(ms)-cut)
	}

	fmt.Printf("%-28s %6.1f%%\n", "accuracy on "+tgt.Name+" (0% retrain):", score())
	for _, frac := range []float64{0.25, 0.50} {
		take := int(frac * float64(cut))
		if err := sel.Port(ms[:take], labTgt[:take]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %6.1f%%   (re-benchmarked %d matrices)\n",
			fmt.Sprintf("after %.0f%% retraining:", 100*frac), score(), take)
	}

	// The supervised contrast: retraining a forest from scratch needs the
	// whole pipeline again; the semi-supervised port only re-voted
	// cluster labels.
	fmt.Printf("\nclusters never changed during porting: %d throughout\n", sel.NumClusters())
}
