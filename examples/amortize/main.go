// Amortize: overhead-conscious format selection.
//
// The paper's related-work section highlights overhead-conscious
// selection (Zhao et al.): converting a matrix out of CSR costs the
// equivalent of many SpMV runs (Table 8: ELL 102X, HYB 147X one CSR
// SpMV), so the right format depends on how many multiplications will
// amortise the conversion. This example sweeps the iteration count for
// matrices of different shapes and prints where the recommendation
// flips from "stay in CSR" to the asymptotically fastest format.
//
// Run with: go run ./examples/amortize
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	arch := gpusim.Turing
	rng := rand.New(rand.NewSource(3))
	fmt.Printf("== Overhead-conscious selection on %s\n\n", arch.Name)

	cases := []struct {
		name string
		fam  dataset.Family
	}{
		{"2-D mesh (ELL-friendly)", dataset.FamilyMesh},
		{"banded PDE", dataset.FamilyBanded},
		{"scale-free graph", dataset.FamilyPowerLaw},
		{"heavy-row incidence", dataset.FamilyHeavyRow},
	}
	iterations := []int{1, 10, 100, 1000, 10000}

	fmt.Printf("%-26s", "matrix")
	for _, it := range iterations {
		fmt.Printf("%8d", it)
	}
	fmt.Printf("   break-even\n")

	for _, c := range cases {
		m := c.fam.Generate(rng, 0.5)
		p := gpusim.NewProfile(m)
		fmt.Printf("%-26s", c.name)
		for _, it := range iterations {
			f, err := arch.AmortizedSelect(p, it)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8v", f)
		}
		// Where does the steady-state winner break even against CSR?
		steady, err := arch.AmortizedSelect(p, 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		if steady == sparse.FormatCSR {
			fmt.Printf("   CSR always\n")
			continue
		}
		if be, ok := arch.BreakEvenIterations(p, steady); ok {
			fmt.Printf("   %v after %d SpMVs\n", steady, be)
		} else {
			fmt.Printf("   never\n")
		}
	}

	fmt.Println("\nreading the table: each column is the total-cost-optimal format when the")
	fmt.Println("matrix will be multiplied that many times; conversion cost (Table 8) keeps")
	fmt.Println("CSR optimal for one-shot uses even when another kernel is faster per run.")
}
