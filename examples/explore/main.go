// Explore: the explainability the paper claims over black-box models.
//
// The example trains the semi-supervised selector, then inspects it:
// per-cluster purity (the paper's cluster-quality measure), the format
// each cluster votes for, and a worked explanation for one matrix of
// each generator family — showing which statistical features place it
// in its cluster.
//
// Run with: go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	arch := gpusim.Pascal
	fmt.Printf("== Explore: inside a selector trained for %s\n\n", arch.Name)

	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: 245, AugmentPerBase: 0, Scale: 0.5,
		DropELLFailures: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ms []*sparse.CSR
	var labels []sparse.Format
	var names []string
	for _, it := range items {
		m := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !m.Feasible() {
			continue
		}
		f, _ := m.BestFormat()
		ms = append(ms, it.Matrix)
		labels = append(labels, f)
		names = append(names, it.Name)
	}
	sel, err := core.TrainSelector(ms, labels, core.Options{NumClusters: 24, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Per-cluster purity: the fraction of members agreeing with the
	// cluster's dominant format. The paper's example shows why purity
	// bounds attainable accuracy.
	purity, count, err := sel.Purity(ms, labels)
	if err != nil {
		log.Fatal(err)
	}
	type cl struct {
		id     int
		purity float64
		count  int
	}
	var cls []cl
	for c := range purity {
		if count[c] > 0 {
			cls = append(cls, cl{c, purity[c], count[c]})
		}
	}
	sort.Slice(cls, func(i, j int) bool { return cls[i].count > cls[j].count })
	fmt.Println("largest clusters (purity bounds the attainable accuracy):")
	weighted := 0.0
	total := 0
	for _, c := range cls {
		weighted += c.purity * float64(c.count)
		total += c.count
	}
	for _, c := range cls[:min(8, len(cls))] {
		// The paper's Section 4 arithmetic: expected accuracy when this
		// cluster is labelled by benchmarking 1 or 3 of its members.
		acc1, err := semisup.ExpectedVoteAccuracy(c.purity, 1)
		if err != nil {
			log.Fatal(err)
		}
		acc3, err := semisup.ExpectedVoteAccuracy(c.purity, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cluster %-3d size %-4d purity %.2f  expected acc: %.2f (1 benchmark) %.2f (3)\n",
			c.id, c.count, c.purity, acc1, acc3)
	}
	fmt.Printf("weighted mean purity: %.3f over %d matrices\n\n", weighted/float64(total), total)

	// Which Table 1 features drive selection? Train a random forest on
	// the same data and rank its Gini importances.
	fx := make([][]float64, len(ms))
	fy := make([]int, len(ms))
	for i, m := range ms {
		fx[i] = features.Extract(m).Slice()
		for k, kf := range sparse.KernelFormats() {
			if kf == labels[i] {
				fy[i] = k
			}
		}
	}
	forest := classify.NewForest(1)
	if err := forest.Fit(fx, fy, sparse.NumKernelFormats); err != nil {
		log.Fatal(err)
	}
	imp := forest.Importances()
	type fi struct {
		name string
		imp  float64
	}
	var ranked []fi
	for j, n := range features.Names {
		ranked = append(ranked, fi{n, imp[j]})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].imp > ranked[j].imp })
	fmt.Println("most informative Table 1 features (random-forest Gini importance):")
	for _, r := range ranked[:6] {
		fmt.Printf("  %-14s %.3f\n", r.name, r.imp)
	}
	fmt.Println()

	// One worked explanation per generator family.
	fmt.Println("worked explanations (one matrix per family):")
	seen := map[string]bool{}
	for i, name := range names {
		fam := strings.SplitN(name, "_", 2)[0]
		if seen[fam] {
			continue
		}
		seen[fam] = true
		e := sel.Explain(ms[i])
		rows, cols := ms[i].Dims()
		fmt.Printf("\n  %s (%dx%d, nnz %d): %s\n", name, rows, cols, ms[i].NNZ(), e)
		fmt.Printf("    truth on %s: %v\n", arch.Name, labels[i])
		// The features that drive the clustering most visibly.
		v := e.Features
		fmt.Printf("    nnz_mu=%.1f nnz_max=%.0f nnz_sig=%.2f ell_frac=%.2f hyb_coo=%.0f scatter proxy dia_frac=%.3f\n",
			v[features.NNZMu], v[features.NNZMax], v[features.NNZSig],
			v[features.EllFrac], v[features.HybCoo], v[features.DiaFrac])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
