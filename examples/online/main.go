// Online: the paper's future-work extension, implemented.
//
// The conclusion of the paper sketches "an online classification system
// that ... learn[s] from SpMV operations while they are being
// performed". This example streams matrices through the incremental
// selector (semisup.Online): most arrive unlabelled (we just run SpMV),
// every tenth is opportunistically benchmarked, and prediction accuracy
// is tracked as the stream progresses — including through a mid-stream
// shift in the workload mix.
//
// Run with: go run ./examples/online
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	arch := gpusim.Turing
	rng := rand.New(rand.NewSource(17))
	fmt.Printf("== Online learning on a %s matrix stream\n\n", arch.Name)

	// Two workload phases: PDE-style matrices first, then a shift toward
	// scale-free graphs whose optimal formats differ.
	phase1 := []dataset.Family{dataset.FamilyBanded, dataset.FamilyMesh, dataset.FamilyBlock}
	phase2 := []dataset.Family{dataset.FamilyPowerLaw, dataset.FamilyRMAT, dataset.FamilyHeavyRow}

	draw := func(fams []dataset.Family) (*sparse.CSR, int, bool) {
		fam := fams[rng.Intn(len(fams))]
		m := fam.Generate(rng, 0.4)
		meas := arch.Measure(fmt.Sprintf("stream_%d", rng.Int63()), gpusim.NewProfile(m))
		if !meas.Feasible() {
			return nil, 0, false
		}
		return m, meas.Best, true
	}

	// Seed the frozen feature space with a small warm-up sample spanning
	// both phases.
	var seed [][]float64
	for i := 0; i < 60; i++ {
		fams := phase1
		if i%2 == 0 {
			fams = phase2
		}
		if m, _, ok := draw(fams); ok {
			seed = append(seed, features.Extract(m).Slice())
		}
	}
	online, err := semisup.NewOnline(seed, sparse.NumKernelFormats, semisup.OnlineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	const perPhase = 600
	window := struct{ hit, n int }{}
	report := func(tag string) {
		if window.n == 0 {
			return
		}
		fmt.Printf("  %-22s accuracy %5.1f%%  clusters %-4d labelled %.0f%%\n",
			tag, 100*float64(window.hit)/float64(window.n),
			online.NumClusters(), 100*online.LabelledFraction())
		window.hit, window.n = 0, 0
	}

	stream := func(fams []dataset.Family, phase string) {
		for i := 0; i < perPhase; i++ {
			m, best, ok := draw(fams)
			if !ok {
				continue
			}
			v := features.Extract(m).Slice()
			// Predict before learning: an honest prequential evaluation.
			if online.Predict(v) == best {
				window.hit++
			}
			window.n++
			if i%10 == 0 {
				// Every tenth SpMV is opportunistically benchmarked.
				if _, err := online.Record(v, best); err != nil {
					log.Fatal(err)
				}
			} else {
				online.Observe(v)
			}
			if (i+1)%200 == 0 {
				report(fmt.Sprintf("%s, %4d seen:", phase, i+1))
			}
		}
	}

	fmt.Println("phase 1: PDE-style workload (banded / mesh / block)")
	stream(phase1, "phase 1")
	fmt.Println("phase 2: workload shifts to scale-free graphs")
	stream(phase2, "phase 2")

	fmt.Printf("\nstream complete: %d matrices seen, %d clusters grown online\n",
		online.Seen(), online.NumClusters())
}
