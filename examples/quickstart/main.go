// Quickstart: train a format selector for one GPU and use it.
//
// The example generates a small synthetic matrix collection, benchmarks
// it on the simulated Turing GPU to obtain ground-truth labels, trains
// the semi-supervised selector, and then recommends (and applies) a
// storage format for a matrix the selector has never seen — reporting
// the SpMV time the choice achieves versus the CSR default.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	arch := gpusim.Turing
	fmt.Printf("== Quickstart: format selection for %s (%s)\n\n", arch.Name, arch.Model)

	// 1. A training collection, benchmarked on the target GPU.
	items, err := dataset.Generate(dataset.Config{
		Seed: 42, BaseCount: 210, AugmentPerBase: 0, Scale: 0.5,
		DropELLFailures: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var train []*sparse.CSR
	var labels []sparse.Format
	for _, it := range items[:len(items)-10] { // hold out the last ten
		m := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !m.Feasible() {
			continue
		}
		f, _ := m.BestFormat()
		train = append(train, it.Matrix)
		labels = append(labels, f)
	}
	fmt.Printf("training on %d matrices benchmarked on %s\n", len(train), arch.Name)

	// 2. Train the selector (K-Means + majority vote, the paper's best).
	sel, err := core.TrainSelector(train, labels, core.Options{NumClusters: 60, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selector ready: %d clusters\n\n", sel.NumClusters())

	// 3. Use it on unseen matrices.
	for _, it := range items[len(items)-10:] {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		e := sel.Explain(it.Matrix)
		idx := formatIndex(e.Format)
		csrIdx := formatIndex(sparse.FormatCSR)
		fmt.Printf("%-18s -> %-3v (%s)\n", it.Name, e.Format, e)
		fmt.Printf("%18s    simulated SpMV: %.2fus picked vs %.2fus CSR",
			"", meas.Times[idx]*1e6, meas.Times[csrIdx]*1e6)
		if best, _ := meas.BestFormat(); best == e.Format {
			fmt.Printf("  [optimal]\n")
		} else {
			fmt.Printf("  [optimal was %v at %.2fus]\n", best, meas.Times[meas.Best]*1e6)
		}

		// Actually converting and multiplying with the recommendation.
		conv, err := sel.Convert(it.Matrix)
		if err != nil {
			fmt.Printf("%18s    conversion fell back to CSR: %v\n", "", err)
			continue
		}
		rows, cols := conv.Dims()
		x := make([]float64, cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]float64, rows)
		if err := conv.SpMV(y, x); err != nil {
			log.Fatal(err)
		}
	}
}

func formatIndex(f sparse.Format) int {
	for i, kf := range sparse.KernelFormats() {
		if kf == f {
			return i
		}
	}
	return -1
}
