// Hostcpu: format selection on genuinely measured data.
//
// Everything else in this repository labels matrices with the analytical
// GPU model. This example instead measures real wall-clock SpMV times of
// the library's own Go kernels on the host CPU — a fourth architecture,
// in the spirit of the paper's argument that format selection must reach
// beyond any one device class — and runs the full semi-supervised
// pipeline on those measurements: train/test split, accuracy against the
// measured ground truth, and the geometric-mean speedup the selector's
// choices achieve over always-CSR.
//
// Run with: go run ./examples/hostcpu
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/cpubench"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== Host-CPU format selection on measured SpMV times")
	fmt.Println()

	items, err := dataset.Generate(dataset.Config{
		Seed: 5, BaseCount: 175, AugmentPerBase: 0, Scale: 0.45,
		DropELLFailures: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(items))
	ms := make([]*sparse.CSR, len(items))
	for i, it := range items {
		names[i] = it.Name
		ms[i] = it.Matrix
	}
	fmt.Printf("measuring %d matrices x %d formats on this CPU...\n", len(ms), sparse.NumKernelFormats)
	lab, dropped, err := cpubench.MeasureAll(names, ms, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d matrices (%d dropped as infeasible)\n\n", len(lab.Names), dropped)

	// Class distribution of the measured labels.
	counts := make([]int, sparse.NumKernelFormats)
	byName := map[string]*sparse.CSR{}
	for i, it := range items {
		byName[names[i]] = it.Matrix
	}
	kept := make([]*sparse.CSR, len(lab.Names))
	best := make([]sparse.Format, len(lab.Names))
	for i, n := range lab.Names {
		kept[i] = byName[n]
		best[i] = sparse.KernelFormats()[lab.Labels[i]]
		counts[lab.Labels[i]]++
	}
	fmt.Print("measured best-format distribution:")
	for i, f := range sparse.KernelFormats() {
		fmt.Printf("  %v %d", f, counts[i])
	}
	fmt.Println()

	cut := len(kept) * 7 / 10
	sel, err := core.TrainSelector(kept[:cut], best[:cut], core.Options{NumClusters: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Held-out evaluation against the measured times.
	hit := 0
	var logCSR, logGT float64
	for i := cut; i < len(kept); i++ {
		pred := sel.Select(kept[i])
		if pred == best[i] {
			hit++
		}
		pi := formatIndex(pred)
		tPred := lab.Times[i][pi]
		tCSR := lab.Times[i][formatIndex(sparse.FormatCSR)]
		tBest := lab.Times[i][lab.Labels[i]]
		logCSR += math.Log(tCSR / tPred)
		logGT += math.Log(tBest / tPred)
	}
	n := float64(len(kept) - cut)
	fmt.Printf("\nheld-out accuracy:            %.1f%%\n", 100*float64(hit)/n)
	fmt.Printf("speedup over always-CSR (GM): %.3fX\n", math.Exp(logCSR/n))
	fmt.Printf("fraction of oracle (GM):      %.3f\n", math.Exp(logGT/n))
	fmt.Println("\n(the labels above are real measurements of this repository's Go kernels,")
	fmt.Println(" not the GPU model — the pipeline is substrate-agnostic)")
}

func formatIndex(f sparse.Format) int {
	for i, kf := range sparse.KernelFormats() {
		if kf == f {
			return i
		}
	}
	return -1
}
