package main

// The model-persistence and serving subcommands: train fits the
// pipeline once and saves the artifact, serve answers predictions from
// a saved artifact over HTTP, and request is the matching stdlib-only
// client (so smoke tests need no curl).

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// labelledTrainingSet generates the synthetic corpus and labels each
// matrix with its best format on the target architecture, dropping
// matrices no format can hold.
func labelledTrainingSet(archName string, quick bool) ([]*sparse.CSR, []sparse.Format, gpusim.Arch, error) {
	arch, ok := gpusim.ArchByName(archName)
	if !ok {
		return nil, nil, arch, fmt.Errorf("unknown architecture %q (want Pascal, Volta or Turing)", archName)
	}
	items, err := dataset.Generate(options(quick).Dataset)
	if err != nil {
		return nil, nil, arch, err
	}
	var ms []*sparse.CSR
	var best []sparse.Format
	for _, it := range items {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		bf, _ := meas.BestFormat()
		ms = append(ms, it.Matrix)
		best = append(best, bf)
	}
	return ms, best, arch, nil
}

// formatLabels converts best-format values to class indices in
// sparse.KernelFormats order.
func formatLabels(best []sparse.Format) []int {
	y := make([]int, len(best))
	for i, f := range best {
		for k, kf := range sparse.KernelFormats() {
			if kf == f {
				y[i] = k
			}
		}
	}
	return y
}

// cmdTrain fits a selector on the synthetic corpus and saves the full
// artifact — preprocessing chain, model, label mapping — for serve and
// predict -model.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	save := fs.String("save", "", "output model file (required)")
	archName := fs.String("arch", "Turing", "target architecture (Pascal, Volta, Turing)")
	model := fs.String("model", "semisup", `model: "semisup" (the paper's pipeline) or a supervised classifier (knn, tree, forest, logreg)`)
	clusters := fs.Int("clusters", 200, "number of K-Means clusters (semisup)")
	seed := fs.Int64("seed", 1, "training seed")
	quick := fs.Bool("quick", false, "train on the reduced corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *save == "" {
		return fmt.Errorf("train: -save is required")
	}
	if *quick {
		// Explicit -clusters wins over the quick default.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["clusters"] {
			*clusters = 32
		}
	}
	ms, best, arch, err := labelledTrainingSet(*archName, *quick)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	fmt.Fprintf(os.Stderr, "training %s on %d matrices labelled for %s...\n", *model, len(ms), arch.Name)

	var art *serve.Artifact
	if *model == "semisup" {
		sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: *seed})
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		art = serve.NewSemisupArtifact(sel.Model(), arch.Name)
	} else {
		x := features.Matrix(features.ExtractAll(ms))
		art, err = serve.TrainClassifierArtifact(*model, arch.Name, x, formatLabels(best), *seed)
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
	}
	if err := serve.SaveFile(*save, art); err != nil {
		return err
	}
	fmt.Printf("saved %s model (%s, %d features) to %s\n", art.Kind, arch.Name, art.InDim(), *save)
	return nil
}

// cmdServe answers predictions from a saved model over HTTP until
// SIGTERM or interrupt, then drains in-flight requests and exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "", "model file written by train -save (required)")
	addr := fs.String("addr", ":8080", "listen address (:0 picks a free port)")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening")
	maxConc := fs.Int("max-concurrent", 0, "bound on in-flight predictions (0 = one per CPU)")
	cacheSize := fs.Int("cache", 512, "prediction LRU capacity in entries (negative disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout, queueing included")
	obsAddr := fs.String("obs", "", "serve expvar+pprof (with the serve/* metrics) on this address too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("serve: -model is required")
	}
	art, err := serve.LoadFile(*model)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(art, serve.Config{
		MaxConcurrent: *maxConc,
		CacheSize:     *cacheSize,
		Timeout:       *timeout,
	})
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		bound, stopObs, err := obs.Serve(*obsAddr)
		if err != nil {
			return err
		}
		defer stopObs()
		fmt.Fprintf(os.Stderr, "serve: expvar and pprof on http://%s/debug/\n", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx, *addr, func(bound string) {
		fmt.Fprintf(os.Stderr, "serve: %s model (%s) listening on http://%s\n", art.Kind, art.Arch, bound)
		if *portFile != "" {
			if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "serve: writing portfile: %v; shutting down\n", err)
				stop()
			}
		}
	})
}

// cmdRequest posts one prediction request to a running serve instance
// and prints the JSON answer — the client half of the smoke test.
func cmdRequest(args []string) error {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	addr := fs.String("addr", "", "server address host:port (required)")
	mtx := fs.String("mtx", "", "MatrixMarket file to submit")
	featuresCSV := fs.String("features", "", "comma-separated raw feature vector to submit instead of a matrix")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("request: -addr is required")
	}
	var path, contentType string
	var body io.Reader
	switch {
	case *mtx != "" && *featuresCSV != "":
		return fmt.Errorf("request: -mtx and -features are mutually exclusive")
	case *mtx != "":
		f, err := os.Open(*mtx)
		if err != nil {
			return err
		}
		defer f.Close()
		path, contentType, body = "/v1/predict/matrix", "text/plain", f
	case *featuresCSV != "":
		var vec []float64
		for _, s := range strings.Split(*featuresCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("request: bad feature value %q: %w", s, err)
			}
			vec = append(vec, v)
		}
		data, err := json.Marshal(map[string][]float64{"features": vec})
		if err != nil {
			return err
		}
		path, contentType, body = "/v1/predict/features", "application/json", strings.NewReader(string(data))
	default:
		return fmt.Errorf("request: one of -mtx or -features is required")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post("http://"+*addr+path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("request: server answered %s", resp.Status)
	}
	return nil
}
