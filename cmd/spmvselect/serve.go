package main

// The model-persistence and serving subcommands: train fits the
// pipeline once and saves the artifact, serve hosts one artifact per
// target architecture behind the model registry (hot-swap on SIGHUP or
// /v1/admin/reload, shadow evaluation, promotion), request is the
// matching stdlib-only client (so smoke tests need no curl), and
// promote flips a shadow candidate to live through the admin API.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// labelledTrainingSet generates the synthetic corpus and labels each
// matrix with its best format on the target architecture, dropping
// matrices no format can hold.
func labelledTrainingSet(archName string, quick bool) ([]*sparse.CSR, []sparse.Format, gpusim.Arch, error) {
	arch, ok := gpusim.ArchByName(archName)
	if !ok {
		return nil, nil, arch, fmt.Errorf("unknown architecture %q (want Pascal, Volta or Turing)", archName)
	}
	items, err := dataset.Generate(options(quick).Dataset)
	if err != nil {
		return nil, nil, arch, err
	}
	var ms []*sparse.CSR
	var best []sparse.Format
	for _, it := range items {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		bf, _ := meas.BestFormat()
		ms = append(ms, it.Matrix)
		best = append(best, bf)
	}
	return ms, best, arch, nil
}

// formatLabels converts best-format values to class indices in
// sparse.KernelFormats order.
func formatLabels(best []sparse.Format) []int {
	y := make([]int, len(best))
	for i, f := range best {
		for k, kf := range sparse.KernelFormats() {
			if kf == f {
				y[i] = k
			}
		}
	}
	return y
}

// cmdTrain fits a selector on the synthetic corpus and saves the full
// artifact — preprocessing chain, model, label mapping — for serve and
// predict -model.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	save := fs.String("save", "", "output model file (required)")
	archName := fs.String("arch", "Turing", "target architecture (Pascal, Volta, Turing)")
	model := fs.String("model", "semisup", `model: "semisup" (the paper's pipeline) or a supervised classifier (knn, tree, forest, logreg)`)
	clusters := fs.Int("clusters", 200, "number of K-Means clusters (semisup)")
	seed := fs.Int64("seed", 1, "training seed")
	quick := fs.Bool("quick", false, "train on the reduced corpus")
	cascade := fs.Bool("cascade", false, "distil a cheap-first cascade stage onto the artifact")
	cascadeTarget := fs.Float64("cascade-target-agreement", 0.95, "agreement with the full model the cascade threshold must reach on held-out data")
	cascadeModel := fs.String("cascade-model", "logreg", `cascade classifier: "logreg" or "forest"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *save == "" {
		return fmt.Errorf("train: -save is required")
	}
	if *quick {
		// Explicit -clusters wins over the quick default.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["clusters"] {
			*clusters = 32
		}
	}
	ms, best, arch, err := labelledTrainingSet(*archName, *quick)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	fmt.Fprintf(os.Stderr, "training %s on %d matrices labelled for %s...\n", *model, len(ms), arch.Name)

	x := features.Matrix(features.ExtractAll(ms))
	y := formatLabels(best)

	var art *serve.Artifact
	if *model == "semisup" {
		sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: *seed})
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		art = serve.NewSemisupArtifact(sel.Model(), arch.Name)
	} else {
		art, err = serve.TrainClassifierArtifact(*model, arch.Name, x, y, *seed)
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
	}
	// The training distribution travels with the model so the registry
	// can monitor served traffic for drift against it.
	art.Baseline = serve.ComputeBaseline(x, y, sparse.NumKernelFormats)
	if *cascade {
		c, err := serve.TrainCascade(art, x, serve.CascadeOptions{
			Model:           *cascadeModel,
			TargetAgreement: *cascadeTarget,
			Seed:            *seed,
		})
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		art.Cascade = c
		if c.Threshold > 1 {
			fmt.Fprintf(os.Stderr, "cascade: target agreement %.2f unattainable on %d held-out rows; stage disabled\n",
				c.TargetAgreement, c.HeldoutSize)
		} else {
			fmt.Fprintf(os.Stderr, "cascade: threshold %.3f, held-out agreement %.3f (target %.2f), hit rate %.3f\n",
				c.Threshold, c.HeldoutAgreement, c.TargetAgreement, c.HeldoutHitRate)
		}
	}
	if err := serve.SaveFile(*save, art); err != nil {
		return err
	}
	fmt.Printf("saved %s model (%s, %d features) to %s\n", art.Kind, arch.Name, art.InDim(), *save)
	return nil
}

// archPath is one arch=path pair from -models / -shadow, in flag
// order (the first -models entry becomes the default arch).
type archPath struct{ arch, path string }

// parseArchModels splits a comma-separated list of arch=path pairs.
func parseArchModels(flagName, spec string) ([]archPath, error) {
	var pairs []archPath
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		arch, path, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(arch) == "" || strings.TrimSpace(path) == "" {
			return nil, fmt.Errorf("%s: %q is not an arch=path pair", flagName, part)
		}
		pairs = append(pairs, archPath{strings.TrimSpace(arch), strings.TrimSpace(path)})
	}
	return pairs, nil
}

// cmdServe hosts saved models over HTTP behind the registry until
// SIGTERM or interrupt, then drains in-flight requests and exits.
// SIGHUP (or an authenticated POST /v1/admin/reload) re-reads every
// artifact file and atomically swaps in the ones whose bytes changed.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "", "single model file written by train -save; its trained arch becomes the only registry entry")
	models := fs.String("models", "", `comma-separated arch=path model files, e.g. "turing=t.gob,pascal=p.gob" (first entry is the default arch)`)
	shadowSpec := fs.String("shadow", "", `comma-separated arch=path candidate artifacts scored alongside the live model of the same arch`)
	defaultArch := fs.String("default-arch", "", "arch answering requests that name none (default: the first configured)")
	adminToken := fs.String("admin-token", "", "bearer token required by the /v1/admin/* endpoints (unset leaves them disabled: every call answers 401)")
	addr := fs.String("addr", ":8080", "listen address (:0 picks a free port)")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening")
	maxConc := fs.Int("max-concurrent", 0, "bound on in-flight predictions (0 = one per CPU)")
	maxBatch := fs.Int("max-batch", 0, "max matrices per /v1/predict/batch request (0 = 64)")
	cacheSize := fs.Int("cache", 512, "prediction LRU capacity in entries (negative disables)")
	featMemo := fs.Int("feat-memo", 0, "feature-vector memo capacity in entries (0 = 4096, negative disables); survives model swaps, unlike -cache")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout, queueing included")
	obsAddr := fs.String("obs", "", "serve expvar+pprof (with the serve/* metrics) on this address too")
	accessLog := fs.String("access-log", "", `write one JSON access-log line per request here ("-" for stderr)`)
	logSample := fs.Int("access-log-sample", 0, "log only 1-in-N requests (errors, feedback and slow requests are always logged; 0/1 = log everything)")
	sloTarget := fs.Float64("slo-target", 0, "availability objective for the SLO windows and burn rates (default 0.999)")
	traceCap := fs.Int("trace", 0, "tail-sampled trace store capacity in entries (0 = 128, negative disables tracing)")
	traceSlow := fs.Duration("trace-slow", 0, "latency above which a request is kept as slow by the trace store and always access-logged (0 = 250ms, negative disables the static threshold)")
	traceSample := fs.Int("trace-sample", 0, "keep 1-in-N otherwise-uninteresting traces (0 = 100, negative disables sampling)")
	debugDir := fs.String("debug-dir", "", "write burn-triggered debug captures (CPU profile + trace snapshot) into this directory")
	burnThreshold := fs.Float64("burn-threshold", 0, "sustained 5m SLO burn rate that triggers a debug capture into -debug-dir (0 disables)")
	recordDir := fs.String("record", "", "capture every prediction request (body + routing metadata) to rotating files in this directory, for `spmvselect replay`")
	recordMaxMB := fs.Int("record-max-mb", 64, "capture file rotation threshold in MiB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pairs, err := parseArchModels("-models", *models)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *model != "" {
		// Single-file shorthand: the artifact's trained arch names the
		// registry entry, so `serve -model m.gob` behaves exactly like
		// `serve -models <arch>=m.gob`.
		art, err := serve.LoadFile(*model)
		if err != nil {
			return err
		}
		arch := serve.NormalizeArch(art.Arch)
		if arch == "" {
			arch = "default"
		}
		pairs = append(pairs, archPath{arch, *model})
	}
	if len(pairs) == 0 {
		return fmt.Errorf("serve: -model or -models is required")
	}
	shadows, err := parseArchModels("-shadow", *shadowSpec)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	reg := registry.New()
	for _, p := range pairs {
		if err := reg.Configure(p.arch, p.path); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	for _, p := range shadows {
		if err := reg.ConfigureShadow(p.arch, p.path); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if *defaultArch != "" {
		if err := reg.SetDefault(*defaultArch); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	var logger *slog.Logger
	if *accessLog != "" {
		w := io.Writer(os.Stderr)
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("serve: opening access log: %w", err)
			}
			defer f.Close()
			w = f
		}
		logger = slog.New(slog.NewJSONHandler(w, nil))
	}

	var capture *obs.CaptureWriter
	if *recordDir != "" {
		capture, err = obs.NewCaptureWriter(*recordDir, int64(*recordMaxMB)<<20)
		if err != nil {
			return fmt.Errorf("serve: opening capture directory: %w", err)
		}
		defer capture.Close()
		fmt.Fprintf(os.Stderr, "serve: recording prediction traffic to %s\n", capture.Dir())
	}

	srv, err := serve.NewBackendServer(reg, serve.Config{
		MaxConcurrent:   *maxConc,
		CacheSize:       *cacheSize,
		FeatMemoSize:    *featMemo,
		Timeout:         *timeout,
		MaxBatchItems:   *maxBatch,
		AdminToken:      *adminToken,
		AccessLog:       logger,
		AccessLogSample: *logSample,
		SLOObjective:    *sloTarget,
		Capture:         capture,
		TraceCapacity:   *traceCap,
		SlowRequest:     *traceSlow,
		TraceSample:     *traceSample,
		DebugDir:        *debugDir,
		BurnThreshold:   *burnThreshold,
	})
	if err != nil {
		return err
	}
	// Every swap — reload, promote, whatever the path — must drop the
	// prediction cache; entries keyed by the old artifact hash are
	// unreachable anyway, but there is no reason to keep them warm.
	reg.OnSwap(srv.FlushCache)

	if *obsAddr != "" {
		bound, stopObs, err := obs.Serve(*obsAddr)
		if err != nil {
			return err
		}
		defer stopObs()
		fmt.Fprintf(os.Stderr, "serve: expvar and pprof on http://%s/debug/\n", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Load in the background so the listener binds immediately; /readyz
	// answers 503 until every configured artifact is decoded.
	go func() {
		if err := reg.LoadAll(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: loading models: %v; shutting down\n", err)
			stop()
		}
	}()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			changed, err := reg.Reload()
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: SIGHUP reload: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "serve: SIGHUP reload: %d artifact(s) swapped %v\n", len(changed), changed)
		}
	}()

	return srv.Run(ctx, *addr, func(bound string) {
		fmt.Fprintf(os.Stderr, "serve: registry %v (default %s) listening on http://%s\n",
			reg.Arches(), reg.DefaultArch(), bound)
		if *portFile != "" {
			if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "serve: writing portfile: %v; shutting down\n", err)
				stop()
			}
		}
	})
}

// cmdRequest talks to a running serve instance and prints the JSON
// answer — the client half of the smoke test. Besides the prediction
// endpoints it can hit any GET/POST path (readiness, admin) so ci.sh
// needs no curl.
func cmdRequest(args []string) error {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	addr := fs.String("addr", "", "server address host:port (required)")
	mtx := fs.String("mtx", "", "MatrixMarket file to submit")
	batch := fs.String("batch", "", "comma-separated MatrixMarket files to submit as one /v1/predict/batch request")
	featuresCSV := fs.String("features", "", "comma-separated raw feature vector to submit instead of a matrix")
	arch := fs.String("arch", "", "route the prediction to this architecture's model")
	get := fs.String("get", "", "GET this path (e.g. /readyz) and print the body")
	post := fs.String("post", "", "POST to this path (e.g. /v1/admin/reload); body from -json, else empty")
	jsonBody := fs.String("json", "", "JSON body sent with -post as application/json (e.g. a /v1/feedback report)")
	token := fs.String("token", "", "bearer token sent as Authorization (for /v1/admin/*)")
	requestID := fs.String("request-id", "", "send this X-Request-ID so the call is findable in the server's access log")
	keepTrace := fs.Bool("keep-trace", false, "send X-Trace-Keep so every hop retains this request's trace for `spmvselect trace`")
	verbose := fs.Bool("v", false, "print the response's X-Request-ID and X-Model-Hash to stderr")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt request timeout")
	retries := fs.Int("retries", 0, "retry transport failures and 502/503/504 up to N times with jittered exponential backoff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("request: -addr is required")
	}
	modes := 0
	for _, set := range []bool{*mtx != "", *batch != "", *featuresCSV != "", *get != "", *post != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("request: exactly one of -mtx, -batch, -features, -get or -post is required")
	}

	method := http.MethodPost
	var path, contentType string
	var body io.Reader
	switch {
	case *mtx != "":
		f, err := os.Open(*mtx)
		if err != nil {
			return err
		}
		defer f.Close()
		path, contentType, body = "/v1/predict/matrix", "text/plain", f
		if *arch != "" {
			path += "?arch=" + *arch
		}
	case *batch != "":
		// Batches go up in the text form — concatenated MatrixMarket
		// files — which the server splits on banner lines without JSON
		// decoding the matrix payloads.
		var buf strings.Builder
		for _, name := range strings.Split(*batch, ",") {
			data, err := os.ReadFile(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			buf.Write(data)
		}
		path, contentType, body = "/v1/predict/batch", "text/plain", strings.NewReader(buf.String())
		if *arch != "" {
			path += "?arch=" + *arch
		}
	case *featuresCSV != "":
		var vec []float64
		for _, s := range strings.Split(*featuresCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("request: bad feature value %q: %w", s, err)
			}
			vec = append(vec, v)
		}
		data, err := json.Marshal(map[string]any{"features": vec, "arch": *arch})
		if err != nil {
			return err
		}
		path, contentType, body = "/v1/predict/features", "application/json", strings.NewReader(string(data))
	case *get != "":
		method, path = http.MethodGet, *get
	case *post != "":
		path = *post
		if *jsonBody != "" {
			contentType, body = "application/json", strings.NewReader(*jsonBody)
		}
	}
	return doRequestFull(method, *addr, path, contentType, *token, *requestID, body, *timeout, *retries,
		reqExtras{keepTrace: *keepTrace, verbose: *verbose})
}

// reqExtras carries the optional request behaviours the smoke-test
// client grew after its signature stopped scaling: trace retention and
// response-identity echo.
type reqExtras struct {
	// keepTrace sends X-Trace-Keep so the proxy and every replica
	// force-retain the request's trace.
	keepTrace bool
	// verbose prints the response's X-Request-ID and X-Model-Hash to
	// stderr — the two keys that connect an answer to its trace and to
	// the artifact that produced it.
	verbose bool
}

// doRequest performs one HTTP exchange against a serve instance,
// copying the response body to stdout and failing on non-200.
func doRequest(method, addr, path, contentType, token string, body io.Reader, timeout time.Duration) error {
	return doRequestID(method, addr, path, contentType, token, "", body, timeout)
}

func doRequestID(method, addr, path, contentType, token, requestID string, body io.Reader, timeout time.Duration) error {
	return doRequestRetry(method, addr, path, contentType, token, requestID, body, timeout, 0)
}

func doRequestRetry(method, addr, path, contentType, token, requestID string, body io.Reader, timeout time.Duration, retries int) error {
	return doRequestFull(method, addr, path, contentType, token, requestID, body, timeout, retries, reqExtras{})
}

// doRequestFull is the full smoke-test exchange with a retry budget
// against transient failures: transport errors (a draining or
// restarting replica) and 502/503/504 answers (the proxy or a replica
// shedding load). The body is buffered up front so every attempt
// replays identical bytes, and only the final attempt's response
// reaches stdout. Backoff is exponential from 100ms with ±50% jitter
// so concurrent CLI loops do not reconverge on the same instant.
func doRequestFull(method, addr, path, contentType, token, requestID string, body io.Reader, timeout time.Duration, retries int, extra reqExtras) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = io.ReadAll(body); err != nil {
			return err
		}
	}
	client := &http.Client{Timeout: timeout}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			base := 100 * time.Millisecond * (1 << (attempt - 1))
			jitter := time.Duration(rand.Int63n(int64(base))) - base/2
			time.Sleep(base + jitter)
		}
		var reqBody io.Reader
		if payload != nil {
			reqBody = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, "http://"+addr+path, reqBody)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		if requestID != "" {
			req.Header.Set("X-Request-ID", requestID)
		}
		if extra.keepTrace {
			req.Header.Set(obs.TraceKeepHeader, "1")
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		retryable := resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout
		if retryable && attempt < retries {
			lastErr = fmt.Errorf("request: server answered %s", resp.Status)
			continue
		}
		if extra.verbose {
			fmt.Fprintf(os.Stderr, "request: X-Request-ID: %s\n", resp.Header.Get("X-Request-ID"))
			fmt.Fprintf(os.Stderr, "request: X-Model-Hash: %s\n", resp.Header.Get("X-Model-Hash"))
		}
		if _, err := os.Stdout.Write(respBody); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("request: server answered %s", resp.Status)
		}
		return nil
	}
	return fmt.Errorf("request: all %d attempts failed: %w", retries+1, lastErr)
}

// cmdPromote flips an arch's shadow candidate to live through the
// admin API of a running serve instance: the candidate artifact starts
// answering that arch's requests, the prediction cache is flushed, and
// the shadow pairing is cleared.
func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "server address host:port (required)")
	arch := fs.String("arch", "", "architecture to promote (default: the server's default arch)")
	token := fs.String("token", "", "admin bearer token (must match the server's -admin-token)")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("promote: -addr is required")
	}
	path := "/v1/admin/promote"
	if *arch != "" {
		path += "?arch=" + *arch
	}
	return doRequest(http.MethodPost, *addr, path, "", *token, nil, *timeout)
}
