package main

// benchfleet measures the fleet tier: the same request mix served
// through the proxy fronting one replica versus N replicas, with every
// replica pinned to serial execution (-max-concurrent 1) and all
// caches off, so added throughput can only come from the ring actually
// spreading load. Correctness gates before speed: every prediction
// fetched through the proxy must be byte-identical to the same body
// asked of a replica directly — consistent hashing, hedging and
// failover are routing concerns and must never change an answer. The
// result is committed as BENCH_fleet.json with a machine-aware
// scaling gate (near-linear on hosts with enough cores to actually
// run N replicas in parallel, a not-pathologically-slower floor on
// starved boxes).

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/proxy"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// fleetBench is the committed record of one benchfleet run.
type fleetBench struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Replicas   int `json:"replicas"`
	Matrices   int `json:"matrices"`
	Rounds     int `json:"rounds"`
	// Concurrency is the client worker count, identical for both fleet
	// sizes so queueing pressure is the same.
	Concurrency int `json:"concurrency"`
	// EqualityChecked counts proxy answers byte-compared against
	// direct-replica answers; the run aborts on the first mismatch.
	EqualityChecked int     `json:"equality_checked"`
	OneSeconds      float64 `json:"one_replica_seconds"`
	FleetSeconds    float64 `json:"fleet_seconds"`
	OneRPS          float64 `json:"one_replica_rps"`
	FleetRPS        float64 `json:"fleet_rps"`
	// Speedup = FleetRPS / OneRPS for the same total predictions.
	Speedup    float64          `json:"speedup"`
	Gate       float64          `json:"gate"`
	OneLatency latencyQuantiles `json:"one_replica_latency"`
	FleetLat   latencyQuantiles `json:"fleet_latency"`
}

func cmdBenchFleet(args []string) error {
	fs := flag.NewFlagSet("benchfleet", flag.ExitOnError)
	nReplicas := fs.Int("replicas", 3, "fleet size for the scaled measurement")
	count := fs.Int("matrices", 24, "number of distinct matrices in the request mix")
	rounds := fs.Int("rounds", 3, "timed passes over the matrix set per fleet size")
	clusters := fs.Int("clusters", 16, "K-Means clusters for the served model")
	out := fs.String("out", "BENCH_fleet.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail below this fleet/single throughput ratio; 0 picks 0.5*replicas when the host has > replicas CPUs and 0.80 otherwise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nReplicas < 2 {
		return fmt.Errorf("benchfleet: -replicas %d: need >= 2 to scale anything", *nReplicas)
	}

	ms, best, arch, err := labelledTrainingSet("Turing", true)
	if err != nil {
		return fmt.Errorf("benchfleet: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchfleet: training semisup on %d matrices (%s)...\n", len(ms), arch.Name)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchfleet: %w", err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), arch.Name)

	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: *count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return fmt.Errorf("benchfleet: %w", err)
	}
	if len(items) < *count {
		*count = len(items)
	}
	bodies := make([][]byte, *count)
	for i := 0; i < *count; i++ {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, items[i].Matrix); err != nil {
			return fmt.Errorf("benchfleet: %w", err)
		}
		bodies[i] = buf.Bytes()
	}

	// Each replica: serial execution, caches off. A fleet of one is
	// then an honest sequential baseline, and any fleet speedup has to
	// come from the ring spreading bodies across replicas.
	startReplica := func() (string, func(), error) {
		srv, err := serve.NewServer(art, serve.Config{CacheSize: -1, FeatMemoSize: -1, MaxConcurrent: 1})
		if err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		server := &http.Server{Handler: srv.Handler()}
		go server.Serve(ln)
		return ln.Addr().String(), func() { server.Close() }, nil
	}
	replicaAddrs := make([]string, *nReplicas)
	for i := range replicaAddrs {
		addr, stop, err := startReplica()
		if err != nil {
			return fmt.Errorf("benchfleet: starting replica %d: %w", i, err)
		}
		defer stop()
		replicaAddrs[i] = addr
	}

	// Hedging is disabled (huge HedgeAfter): with every replica pinned
	// serial, queueing is expected, and a hedge would double the load
	// and poison the scaling measurement.
	startProxy := func(fleet []string) (string, func(), error) {
		p, err := proxy.New(proxy.Config{
			Replicas:   fleet,
			HedgeAfter: time.Hour,
			Timeout:    5 * time.Minute,
		})
		if err != nil {
			return "", nil, err
		}
		p.CheckAll(context.Background())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		server := &http.Server{Handler: p.Handler()}
		go server.Serve(ln)
		return ln.Addr().String(), func() { server.Close() }, nil
	}

	client := &http.Client{Timeout: 5 * time.Minute, Transport: &http.Transport{
		MaxIdleConnsPerHost: 4 * *nReplicas,
	}}
	fetch := func(base string, body []byte) ([]byte, error) {
		resp, err := client.Post("http://"+base+"/v1/predict/matrix", "text/plain", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", resp.Status, data)
		}
		return data, nil
	}

	// Correctness first: answers fetched directly from a replica are
	// the reference; the proxy must reproduce them byte for byte.
	direct := make([][]byte, *count)
	for i, b := range bodies {
		if direct[i], err = fetch(replicaAddrs[0], b); err != nil {
			return fmt.Errorf("benchfleet: direct predict %d: %w", i, err)
		}
	}
	fleetBase, stopFleet, err := startProxy(replicaAddrs)
	if err != nil {
		return fmt.Errorf("benchfleet: starting fleet proxy: %w", err)
	}
	defer stopFleet()
	checked := 0
	for i, b := range bodies {
		got, err := fetch(fleetBase, b)
		if err != nil {
			return fmt.Errorf("benchfleet: proxied predict %d: %w", i, err)
		}
		if !bytes.Equal(got, direct[i]) {
			return fmt.Errorf("benchfleet: body %d: proxied answer differs from direct replica answer\nproxy:  %s\ndirect: %s",
				i, got, direct[i])
		}
		checked++
	}
	fmt.Fprintf(os.Stderr, "benchfleet: %d proxied answers byte-identical to direct replica answers\n", checked)

	// Throughput: the same concurrent client load against a fleet of
	// one and the full fleet, best-of-rounds.
	conc := 2 * *nReplicas
	load := func(base string, lat *[]time.Duration) (time.Duration, error) {
		var bestDur time.Duration
		for r := 0; r < *rounds; r++ {
			var wg sync.WaitGroup
			errc := make(chan error, conc)
			var mu sync.Mutex
			start := time.Now()
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(bodies); i += conc {
						t0 := time.Now()
						if _, err := fetch(base, bodies[i]); err != nil {
							errc <- fmt.Errorf("worker %d body %d: %w", w, i, err)
							return
						}
						if lat != nil {
							mu.Lock()
							*lat = append(*lat, time.Since(t0))
							mu.Unlock()
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			if err := <-errc; err != nil {
				return 0, err
			}
			if d := time.Since(start); bestDur == 0 || d < bestDur {
				bestDur = d
			}
		}
		return bestDur, nil
	}

	oneBase, stopOne, err := startProxy(replicaAddrs[:1])
	if err != nil {
		return fmt.Errorf("benchfleet: starting single-replica proxy: %w", err)
	}
	defer stopOne()
	fmt.Fprintf(os.Stderr, "benchfleet: %d matrices x %d rounds, %d client workers, 1 vs %d replicas...\n",
		*count, *rounds, conc, *nReplicas)
	var oneLat, fleetLat []time.Duration
	oneDur, err := load(oneBase, &oneLat)
	if err != nil {
		return fmt.Errorf("benchfleet: single-replica load: %w", err)
	}
	fleetDur, err := load(fleetBase, &fleetLat)
	if err != nil {
		return fmt.Errorf("benchfleet: fleet load: %w", err)
	}

	total := float64(*count)
	res := fleetBench{
		CPUs:            runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Replicas:        *nReplicas,
		Matrices:        *count,
		Rounds:          *rounds,
		Concurrency:     conc,
		EqualityChecked: checked,
		OneSeconds:      oneDur.Seconds(),
		FleetSeconds:    fleetDur.Seconds(),
		OneRPS:          total / oneDur.Seconds(),
		FleetRPS:        total / fleetDur.Seconds(),
		Speedup:         oneDur.Seconds() / fleetDur.Seconds(),
		OneLatency:      quantiles(oneLat),
		FleetLat:        quantiles(fleetLat),
	}
	gate := *minSpeedup
	if gate == 0 {
		if res.CPUs > *nReplicas {
			// Enough cores that N serial replicas genuinely run in
			// parallel: demand at least half-linear scaling.
			gate = 0.5 * float64(*nReplicas)
		} else {
			// The replicas time-share the same cores; the fleet cannot
			// scale here. Only guard against the proxy hop making the
			// fleet pathologically slower than one replica.
			gate = 0.80
		}
	}
	res.Gate = gate

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchfleet: %d cpus: %.0f predictions in %.2fs via 1 replica (%.0f/s) vs %.2fs via %d (%.0f/s), %.2fx -> %s\n",
		res.CPUs, total, res.OneSeconds, res.OneRPS, res.FleetSeconds, *nReplicas, res.FleetRPS, res.Speedup, *out)
	fmt.Printf("benchfleet: latency p50 %.2fms/%.2fms p95 %.2fms/%.2fms (1 vs %d replicas), %d answers equality-checked\n",
		res.OneLatency.P50Ms, res.FleetLat.P50Ms, res.OneLatency.P95Ms, res.FleetLat.P95Ms, *nReplicas, checked)
	if res.Speedup < gate {
		return fmt.Errorf("benchfleet: fleet speedup %.2fx below the %.2fx gate", res.Speedup, gate)
	}
	return nil
}
