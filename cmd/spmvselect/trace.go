package main

// The trace subcommand: fetch retained request traces from a running
// serve replica or proxy and render them — the list view as a table,
// a single trace as the same text span tree `spmvselect report -text`
// uses, so one rendering path serves offline run reports and live
// request traces alike. Pointed at a proxy, the fetched tree arrives
// already stitched: replica span trees grafted under the attempt spans
// that reached them.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

// fetchedTrace decodes both answer shapes: a replica's obs.TraceEntry
// and a proxy's stitched trace (same fields plus stitched_from).
type fetchedTrace struct {
	TraceID      string        `json:"trace_id"`
	Root         *obs.SpanData `json:"root"`
	Reasons      []string      `json:"reasons"`
	Status       int           `json:"status"`
	At           time.Time     `json:"at"`
	StitchedFrom []string      `json:"stitched_from,omitempty"`
}

// cmdTrace lists or fetches retained traces over the admin API.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "", "serve replica or proxy address host:port (required)")
	id := fs.String("id", "", "fetch this trace (an X-Request-ID) and render its span tree; empty lists retained traces")
	token := fs.String("token", "", "admin bearer token (the target's -admin-token)")
	asJSON := fs.Bool("json", false, "print the raw JSON answer instead of rendering")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("trace: -addr is required")
	}
	path := "/v1/admin/trace"
	if *id != "" {
		path += "/" + *id
	}
	body, err := fetchAdminJSON(*addr, path, *token, *timeout)
	if err != nil {
		return err
	}
	if *asJSON {
		_, err := os.Stdout.Write(body)
		return err
	}
	if *id == "" {
		var list struct {
			Count  int                `json:"count"`
			Traces []obs.TraceSummary `json:"traces"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			return fmt.Errorf("trace: parsing list: %w", err)
		}
		if list.Count == 0 {
			fmt.Println("no retained traces")
			return nil
		}
		fmt.Printf("%-34s %-28s %12s  %6s  %s\n", "TRACE", "ENDPOINT", "DURATION", "STATUS", "REASONS")
		for _, s := range list.Traces {
			fmt.Printf("%-34s %-28s %12v  %6d  %s\n",
				s.TraceID, s.Name, s.Duration.Round(time.Microsecond), s.Status,
				strings.Join(s.Reasons, ","))
		}
		return nil
	}
	var tr fetchedTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("trace: parsing trace: %w", err)
	}
	if tr.Root == nil {
		return fmt.Errorf("trace: %s has no span tree", tr.TraceID)
	}
	fmt.Printf("trace %s  status %d  kept for %s  at %s\n",
		tr.TraceID, tr.Status, strings.Join(tr.Reasons, ","), tr.At.Format(time.RFC3339Nano))
	if len(tr.StitchedFrom) > 0 {
		fmt.Printf("stitched replica spans from %s\n", strings.Join(tr.StitchedFrom, ", "))
	}
	return obs.WriteTree(os.Stdout, []*obs.SpanData{tr.Root})
}

// fetchAdminJSON GETs one admin path and returns the body, failing
// with the server's error message on non-200.
func fetchAdminJSON(addr, path, token string, timeout time.Duration) ([]byte, error) {
	client := &http.Client{Timeout: timeout}
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("trace: %s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("trace: server answered %s", resp.Status)
	}
	return body, nil
}
