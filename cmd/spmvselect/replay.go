package main

// The traffic replay harness: `serve -record DIR` captures every
// prediction request (body plus routing metadata plus the answer) to
// rotating capture files; `replay` plays a capture directory back
// against a live server under controlled concurrency and rate, diffs
// the replayed predictions against the recorded ones, and reports
// latency quantiles — regression testing with production traffic
// instead of synthetic corpora. `benchreplay` is the self-contained CI
// form: it records a known request mix (including /v1/feedback
// outcome reports driven by simulator-measured kernel times), replays
// it sequentially and concurrently, and gates on byte-identical
// predictions plus a machine-aware throughput ratio (BENCH_replay.json).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// replayRecord is one decoded capture entry ready to send.
type replayRecord struct {
	rec  serve.CaptureRecord
	body []byte
}

// loadCapture reads and decodes every record in a capture directory.
func loadCapture(dir string) ([]replayRecord, error) {
	var out []replayRecord
	err := obs.ReadCaptureDir(dir, func(raw []byte) error {
		rec, body, err := serve.DecodeCaptureRecord(raw)
		if err != nil {
			return err
		}
		out = append(out, replayRecord{rec: rec, body: body})
		return nil
	})
	return out, err
}

// skewEntry is one arch=weight pair from -arch-skew.
type skewEntry struct {
	arch   string
	weight float64
}

// parseSkew splits "turing=3,pascal=1" into weighted entries.
func parseSkew(spec string) ([]skewEntry, error) {
	var out []skewEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		arch, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-arch-skew: %q is not an arch=weight pair", part)
		}
		weight, err := strconv.ParseFloat(strings.TrimSpace(w), 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("-arch-skew: weight %q is not a positive number", w)
		}
		out = append(out, skewEntry{serve.NormalizeArch(arch), weight})
	}
	return out, nil
}

// pickSkew deterministically assigns record i an arch by weighted
// choice, so two replays of the same capture route identically without
// any shared random state across workers.
func pickSkew(skew []skewEntry, i int) string {
	var total float64
	for _, s := range skew {
		total += s.weight
	}
	// Knuth multiplicative hash of the index onto [0, total).
	v := float64((uint32(i)*2654435761)%10000) / 10000 * total
	for _, s := range skew {
		if v < s.weight {
			return s.arch
		}
		v -= s.weight
	}
	return skew[len(skew)-1].arch
}

// replayStats summarises one replay pass.
type replayStats struct {
	Records    int              `json:"records"`
	Failures   int              `json:"failures"`
	Mismatches int              `json:"mismatches"`
	Seconds    float64          `json:"seconds"`
	RPS        float64          `json:"rps"`
	Latency    latencyQuantiles `json:"latency"`
}

// replayPass sends every record against base with the requested
// concurrency and rate, diffing predictions unless skew rerouting made
// the comparison meaningless. Mismatch details are capped at ten — the
// count is the signal, the samples are for debugging.
func replayPass(base string, recs []replayRecord, concurrency int, rate float64, skew []skewEntry, timeout time.Duration) (replayStats, []string) {
	if concurrency < 1 {
		concurrency = 1
	}
	client := &http.Client{Timeout: timeout}
	diff := len(skew) == 0

	var ticks <-chan time.Time
	if rate > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer ticker.Stop()
		ticks = ticker.C
	}

	var failures, mismatches atomic.Int64
	var mu sync.Mutex
	var durs []time.Duration
	var details []string

	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ticks != nil {
					<-ticks
				}
				r := recs[i]
				arch := r.rec.Arch
				if len(skew) > 0 {
					arch = pickSkew(skew, i)
				}
				target := base + r.rec.Endpoint
				if arch != "" {
					target += "?arch=" + url.QueryEscape(arch)
				}
				t0 := time.Now()
				got, err := sendReplay(client, target, r.rec.ContentType, r.body)
				d := time.Since(t0)
				mu.Lock()
				durs = append(durs, d)
				mu.Unlock()
				if err != nil {
					failures.Add(1)
					mu.Lock()
					if len(details) < 10 {
						details = append(details, fmt.Sprintf("record %d (%s): %v", i, r.rec.Endpoint, err))
					}
					mu.Unlock()
					continue
				}
				if want := strings.Join(r.rec.Predictions, ","); diff && got != want {
					mismatches.Add(1)
					mu.Lock()
					if len(details) < 10 {
						details = append(details, fmt.Sprintf("record %d (%s): predicted %q, recorded %q",
							i, r.rec.Endpoint, got, want))
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range recs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	stats := replayStats{
		Records:    len(recs),
		Failures:   int(failures.Load()),
		Mismatches: int(mismatches.Load()),
		Seconds:    elapsed.Seconds(),
		Latency:    quantiles(durs),
	}
	if stats.Seconds > 0 {
		stats.RPS = float64(stats.Records) / stats.Seconds
	}
	return stats, details
}

// sendReplay posts one recorded body and extracts the predicted
// format(s) from the answer — the single format for the matrix and
// features endpoints, the comma-joined per-item formats for batch.
func sendReplay(client *http.Client, target, contentType string, body []byte) (string, error) {
	if contentType == "" {
		contentType = "text/plain"
	}
	resp, err := client.Post(target, contentType, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var ans struct {
		Format  string `json:"format"`
		Results []struct {
			Format string `json:"format"`
		} `json:"results"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		return "", fmt.Errorf("decoding answer: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server answered %s: %s", resp.Status, ans.Error)
	}
	if len(ans.Results) > 0 {
		formats := make([]string, len(ans.Results))
		for i, r := range ans.Results {
			formats[i] = r.Format
		}
		return strings.Join(formats, ","), nil
	}
	return ans.Format, nil
}

// cmdReplay plays a capture directory back against a running server.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := fs.String("dir", "", "capture directory written by serve -record (required)")
	addr := fs.String("addr", "", "server address host:port (required)")
	concurrency := fs.Int("concurrency", 1, "parallel replay workers")
	rate := fs.Float64("rate", 0, "request rate limit in req/s across all workers (0 = as fast as possible)")
	archSkew := fs.String("arch-skew", "", `reroute requests across arches by weight, e.g. "turing=3,pascal=1" (disables prediction diffing)`)
	out := fs.String("out", "", "also write the replay stats as JSON here")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *addr == "" {
		return fmt.Errorf("replay: -dir and -addr are required")
	}
	skew, err := parseSkew(*archSkew)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	recs, err := loadCapture(*dir)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Fprintf(os.Stderr, "replay: %d records from %s against %s (concurrency %d)...\n",
		len(recs), *dir, *addr, *concurrency)

	stats, details := replayPass("http://"+*addr, recs, *concurrency, *rate, skew, *timeout)
	for _, d := range details {
		fmt.Fprintf(os.Stderr, "replay: %s\n", d)
	}
	fmt.Printf("replay: %d records in %.2fs (%.0f/s), %d failures, %d mismatches; latency p50 %.2fms p95 %.2fms p99 %.2fms\n",
		stats.Records, stats.Seconds, stats.RPS, stats.Failures, stats.Mismatches,
		stats.Latency.P50Ms, stats.Latency.P95Ms, stats.Latency.P99Ms)
	if *out != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if stats.Failures > 0 {
		return fmt.Errorf("replay: %d of %d requests failed", stats.Failures, stats.Records)
	}
	if len(skew) == 0 && stats.Mismatches > 0 {
		return fmt.Errorf("replay: %d of %d predictions differ from the recording", stats.Mismatches, stats.Records)
	}
	return nil
}

// replayBench is the committed record of one benchreplay run.
type replayBench struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Records captured and replayed; Predictions counts individual
	// predictions inside them (batch items included).
	Records         int `json:"records"`
	Predictions     int `json:"predictions"`
	FeedbackReports int `json:"feedback_reports"`
	Concurrency     int `json:"concurrency"`
	// Mismatches must be zero: a replayed capture against the same
	// model must reproduce every recorded prediction.
	Mismatches        int     `json:"mismatches"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ConcurrentSeconds float64 `json:"concurrent_seconds"`
	// Speedup = sequential/concurrent wall time for the same records.
	Speedup           float64          `json:"speedup"`
	SequentialLatency latencyQuantiles `json:"sequential_latency"`
	ConcurrentLatency latencyQuantiles `json:"concurrent_latency"`
	// Quality summarises /v1/admin/quality after the feedback reports:
	// the measured top-1 accuracy and regret median of the served model
	// on this run's traffic.
	QualitySamples   int64   `json:"quality_samples"`
	QualityAccuracy  float64 `json:"quality_accuracy"`
	QualityRegretP50 float64 `json:"quality_regret_p50"`
}

// cmdBenchReplay is the self-contained record→feedback→replay cycle CI
// commits as BENCH_replay.json.
func cmdBenchReplay(args []string) error {
	fs := flag.NewFlagSet("benchreplay", flag.ExitOnError)
	singles := fs.Int("singles", 16, "single-matrix requests to record")
	batches := fs.Int("batches", 2, "batch requests to record")
	batchSize := fs.Int("batch-size", 4, "matrices per batch request")
	clusters := fs.Int("clusters", 16, "K-Means clusters for the served model")
	concurrency := fs.Int("concurrency", 4, "workers for the concurrent replay pass")
	out := fs.String("out", "BENCH_replay.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail below this sequential/concurrent wall-time ratio; 0 picks 1.5 when the host has >= 4 CPUs and 0.60 otherwise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	const adminToken = "benchreplay-admin"

	// Train and save the served artifact.
	ms, best, arch, err := labelledTrainingSet("Turing", true)
	if err != nil {
		return fmt.Errorf("benchreplay: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchreplay: training semisup on %d matrices (%s)...\n", len(ms), arch.Name)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchreplay: %w", err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), arch.Name)
	tmp, err := os.MkdirTemp("", "benchreplay")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	artPath := filepath.Join(tmp, "model.gob")
	if err := serve.SaveFile(artPath, art); err != nil {
		return err
	}

	// Serve it from the registry (the quality windows need one) with a
	// capture writer attached and the cache off, so replayed requests
	// recompute instead of replaying the LRU.
	capture, err := obs.NewCaptureWriter(filepath.Join(tmp, "capture"), obs.DefaultCaptureFileBytes)
	if err != nil {
		return err
	}
	reg := registry.New()
	if err := reg.Configure(arch.Name, artPath); err != nil {
		return err
	}
	srv, err := serve.NewBackendServer(reg, serve.Config{
		CacheSize:     -1,
		MaxBatchItems: *batchSize,
		AdminToken:    adminToken,
		Capture:       capture,
	})
	if err != nil {
		return err
	}
	reg.OnSwap(srv.FlushCache)
	if err := reg.LoadAll(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: srv.Handler()}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: time.Minute}

	// The recorded mix reuses the corpus generator at a different seed,
	// keeping only matrices every format can hold so the simulator sweep
	// yields full feedback (finite times for all four formats).
	need := *singles + *batches**batchSize
	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: need + 8, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return err
	}
	type reqMatrix struct {
		body  []byte
		times map[string]float64 // per-format measured ms, full sweeps only
	}
	var mix []reqMatrix
	formats := serve.KernelFormatNames()
	for _, it := range items {
		if len(mix) == need {
			break
		}
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, it.Matrix); err != nil {
			return err
		}
		times := make(map[string]float64, len(formats))
		for k, f := range formats {
			times[f] = meas.Times[k] * 1e3 // seconds -> ms
		}
		mix = append(mix, reqMatrix{body: buf.Bytes(), times: times})
	}
	if len(mix) < need {
		return fmt.Errorf("benchreplay: only %d of %d needed matrices are feasible on every format", len(mix), need)
	}

	// postJSON drives the feedback reports.
	postJSON := func(path string, payload any) error {
		data, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := json.Marshal(payload)
			return fmt.Errorf("POST %s answered %s (payload %s)", path, resp.Status, msg)
		}
		return nil
	}

	// Record the mix: singles with known request IDs, then batches, each
	// followed by its feedback report built from the measured times.
	fmt.Fprintf(os.Stderr, "benchreplay: recording %d singles + %d batches and reporting feedback...\n",
		*singles, *batches)
	feedbackReports := 0
	for i := 0; i < *singles; i++ {
		id := fmt.Sprintf("benchreplay-%03d", i)
		req, err := http.NewRequest(http.MethodPost, base+"/v1/predict/matrix", bytes.NewReader(mix[i].body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("X-Request-ID", id)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("benchreplay: predict %d answered %s", i, resp.Status)
		}
		if err := postJSON("/v1/feedback", map[string]any{
			"request_id": id, "times_ms": mix[i].times,
		}); err != nil {
			return fmt.Errorf("benchreplay: feedback %d: %w", i, err)
		}
		feedbackReports++
	}
	for b := 0; b < *batches; b++ {
		lo := *singles + b**batchSize
		var buf bytes.Buffer
		for j := 0; j < *batchSize; j++ {
			buf.Write(mix[lo+j].body)
		}
		id := fmt.Sprintf("benchreplay-batch-%02d", b)
		req, err := http.NewRequest(http.MethodPost, base+"/v1/predict/batch", &buf)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("X-Request-ID", id)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("benchreplay: batch %d answered %s", b, resp.Status)
		}
		for j := 0; j < *batchSize; j++ {
			if err := postJSON("/v1/feedback", map[string]any{
				"request_id": id, "item": j, "times_ms": mix[lo+j].times,
			}); err != nil {
				return fmt.Errorf("benchreplay: batch %d item %d feedback: %w", b, j, err)
			}
			feedbackReports++
		}
	}
	if err := capture.Close(); err != nil {
		return err
	}

	// Replay the capture against the same live server: sequentially
	// (the determinism gate) and concurrently (the throughput gate).
	recs, err := loadCapture(capture.Dir())
	if err != nil {
		return fmt.Errorf("benchreplay: reading back the capture: %w", err)
	}
	predictions := 0
	for _, r := range recs {
		predictions += len(r.rec.Predictions)
	}
	fmt.Fprintf(os.Stderr, "benchreplay: replaying %d records (%d predictions) x2...\n", len(recs), predictions)
	seqStats, seqDetails := replayPass(base, recs, 1, 0, nil, time.Minute)
	concStats, concDetails := replayPass(base, recs, *concurrency, 0, nil, time.Minute)
	for _, d := range append(seqDetails, concDetails...) {
		fmt.Fprintf(os.Stderr, "benchreplay: %s\n", d)
	}

	// The quality report must show the feedback landed.
	var quality registry.QualityReportData
	qreq, err := http.NewRequest(http.MethodGet, base+"/v1/admin/quality", nil)
	if err != nil {
		return err
	}
	qreq.Header.Set("Authorization", "Bearer "+adminToken)
	qresp, err := client.Do(qreq)
	if err != nil {
		return err
	}
	err = json.NewDecoder(qresp.Body).Decode(&quality)
	qresp.Body.Close()
	if err != nil {
		return fmt.Errorf("benchreplay: decoding /v1/admin/quality: %w", err)
	}

	res := replayBench{
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Records:           len(recs),
		Predictions:       predictions,
		FeedbackReports:   feedbackReports,
		Concurrency:       *concurrency,
		Mismatches:        seqStats.Mismatches + concStats.Mismatches,
		SequentialSeconds: seqStats.Seconds,
		ConcurrentSeconds: concStats.Seconds,
		SequentialLatency: seqStats.Latency,
		ConcurrentLatency: concStats.Latency,
	}
	if concStats.Seconds > 0 {
		res.Speedup = seqStats.Seconds / concStats.Seconds
	}
	for _, ar := range quality.Arches {
		res.QualitySamples += ar.Samples
		if ar.Samples > 0 {
			res.QualityAccuracy = ar.Accuracy
			res.QualityRegretP50 = ar.RegretP50
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchreplay: %d cpus: %d records replayed, %d mismatches, %.2fs sequential vs %.2fs at concurrency %d (%.2fx) -> %s\n",
		res.CPUs, res.Records, res.Mismatches, res.SequentialSeconds, res.ConcurrentSeconds, res.Concurrency, res.Speedup, *out)
	fmt.Printf("benchreplay: quality window: %d samples, accuracy %.2f, regret p50 %.3f\n",
		res.QualitySamples, res.QualityAccuracy, res.QualityRegretP50)

	if failures := seqStats.Failures + concStats.Failures; failures > 0 {
		return fmt.Errorf("benchreplay: %d replayed requests failed", failures)
	}
	if res.Mismatches > 0 {
		return fmt.Errorf("benchreplay: %d replayed predictions differ from the recording", res.Mismatches)
	}
	if res.QualitySamples == 0 {
		return fmt.Errorf("benchreplay: /v1/admin/quality shows no full feedback outcomes")
	}
	if math.Abs(res.QualityAccuracy) > 1 {
		return fmt.Errorf("benchreplay: quality accuracy %v outside [0,1]", res.QualityAccuracy)
	}
	gate := *minSpeedup
	if gate == 0 {
		if res.CPUs >= 4 {
			// Concurrent replay against a parallel server should beat
			// one-at-a-time comfortably on a multicore host.
			gate = 1.5
		} else {
			// Too few cores for concurrency to pay; only guard against
			// the concurrent path being pathologically slower.
			gate = 0.60
		}
	}
	if res.Speedup < gate {
		return fmt.Errorf("benchreplay: concurrent replay speedup %.2fx below the %.2fx gate", res.Speedup, gate)
	}
	return nil
}
