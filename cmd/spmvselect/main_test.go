package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdExportWritesReadableMatrices(t *testing.T) {
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no matrices exported")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mtx") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestCmdExportRequiresDir(t *testing.T) {
	if err := cmdExport(nil); err == nil {
		t.Error("missing -dir accepted")
	}
}

func TestCmdTableValidatesNumber(t *testing.T) {
	if err := cmdTable([]string{"-n", "0"}, false); err == nil {
		t.Error("table 0 accepted")
	}
	if err := cmdTable([]string{"-n", "10"}, false); err == nil {
		t.Error("table 10 accepted")
	}
}

func TestCmdTableStatic(t *testing.T) {
	// Tables 1 and 2 are static catalogues: no corpus is built, so this
	// stays fast.
	if err := cmdTable([]string{"-n", "1"}, false); err != nil {
		t.Fatal(err)
	}
	if err := cmdTable([]string{"-n", "2"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("predict trains a corpus-backed selector")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("export produced nothing: %v", err)
	}
	mtx := filepath.Join(dir, entries[0].Name())
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Volta", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Ampere"}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if err := cmdPredict([]string{"-arch", "Volta"}); err == nil {
		t.Error("missing -mtx accepted")
	}
}

func TestCmdCPUBench(t *testing.T) {
	if testing.Short() {
		t.Skip("cpubench measures real kernels")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "24", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench([]string{"-dir", dir, "-trials", "1", "-clusters", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench(nil); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := cmdCPUBench([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty directory accepted")
	}
}
