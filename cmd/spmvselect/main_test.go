package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestCmdExportWritesReadableMatrices(t *testing.T) {
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no matrices exported")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mtx") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestCmdExportRequiresDir(t *testing.T) {
	if err := cmdExport(nil); err == nil {
		t.Error("missing -dir accepted")
	}
}

func TestCmdTableValidatesNumber(t *testing.T) {
	if err := cmdTable([]string{"-n", "0"}, false); err == nil {
		t.Error("table 0 accepted")
	}
	if err := cmdTable([]string{"-n", "10"}, false); err == nil {
		t.Error("table 10 accepted")
	}
}

func TestCmdTableStatic(t *testing.T) {
	// Tables 1 and 2 are static catalogues: no corpus is built, so this
	// stays fast.
	if err := cmdTable([]string{"-n", "1"}, false); err != nil {
		t.Fatal(err)
	}
	if err := cmdTable([]string{"-n", "2"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("predict trains a corpus-backed selector")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("export produced nothing: %v", err)
	}
	mtx := filepath.Join(dir, entries[0].Name())
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Volta", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Ampere"}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if err := cmdPredict([]string{"-arch", "Volta"}); err == nil {
		t.Error("missing -mtx accepted")
	}
}

func TestCmdCPUBench(t *testing.T) {
	if testing.Short() {
		t.Skip("cpubench measures real kernels")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "24", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench([]string{"-dir", dir, "-trials", "1", "-clusters", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench(nil); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := cmdCPUBench([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty directory accepted")
	}
}

// TestCmdObsReportRoundTrip exercises the -obs flag end-to-end on the
// cheapest instrumented command (table -n 1 binds the debug server,
// installs the sink and writes a report without building a corpus),
// then reads the report back through the report subcommand.
func TestCmdObsReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := cmdTable([]string{"-n", "1", "-obs", "127.0.0.1:0", "-report", path}, false); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Error("observability still enabled after the run finished")
	}
	r, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Command != "table" {
		t.Errorf("report command = %q, want table", r.Command)
	}
	if err := cmdReport([]string{"-in", path}); err != nil {
		t.Errorf("report: %v", err)
	}
	if err := cmdReport([]string{"-in", path, "-text"}); err != nil {
		t.Errorf("report -text: %v", err)
	}
	if err := cmdReport([]string{"-in", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing report file accepted")
	}
}

// TestCmdCPUBenchQuickObs runs the measured CPU pipeline with -quick
// and -obs and checks the run report carries the per-stage spans and
// kernel-throughput histograms the acceptance criteria name.
func TestCmdCPUBenchQuickObs(t *testing.T) {
	if testing.Short() {
		t.Skip("cpubench measures real kernels")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "24", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := cmdCPUBench([]string{"-dir", dir, "-quick", "-obs", "127.0.0.1:0", "-report", path}); err != nil {
		t.Fatal(err)
	}
	r, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.FindSpan("cpubench/measure") == nil {
		t.Error("report has no cpubench/measure span")
	}
	if r.FindSpan("cpubench/train") == nil {
		t.Error("report has no cpubench/train span")
	}
	h, ok := r.Metrics.Histograms["spmv/CSR/rows_per_s"]
	if !ok || h.Count == 0 {
		t.Errorf("report has no CSR kernel-throughput samples: %+v", h)
	}
	if r.Metrics.Counters["cpubench/measured"] == 0 {
		t.Error("cpubench/measured counter is zero")
	}
}
