package main

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCmdExportWritesReadableMatrices(t *testing.T) {
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no matrices exported")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mtx") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestCmdExportRequiresDir(t *testing.T) {
	if err := cmdExport(nil); err == nil {
		t.Error("missing -dir accepted")
	}
}

func TestCmdTableValidatesNumber(t *testing.T) {
	if err := cmdTable([]string{"-n", "0"}, false); err == nil {
		t.Error("table 0 accepted")
	}
	if err := cmdTable([]string{"-n", "10"}, false); err == nil {
		t.Error("table 10 accepted")
	}
}

func TestCmdTableStatic(t *testing.T) {
	// Tables 1 and 2 are static catalogues: no corpus is built, so this
	// stays fast.
	if err := cmdTable([]string{"-n", "1"}, false); err != nil {
		t.Fatal(err)
	}
	if err := cmdTable([]string{"-n", "2"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("predict trains a corpus-backed selector")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("export produced nothing: %v", err)
	}
	mtx := filepath.Join(dir, entries[0].Name())
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Volta", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-mtx", mtx, "-arch", "Ampere"}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if err := cmdPredict([]string{"-arch", "Volta"}); err == nil {
		t.Error("missing -mtx accepted")
	}
}

func TestCmdCPUBench(t *testing.T) {
	if testing.Short() {
		t.Skip("cpubench measures real kernels")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "24", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench([]string{"-dir", dir, "-trials", "1", "-clusters", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCPUBench(nil); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := cmdCPUBench([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty directory accepted")
	}
}

// TestCmdTrainServeRequestRoundTrip walks the full deployment story
// in-process: train a model, save it, predict from the saved file,
// serve it over HTTP, query it with the request subcommand, and shut
// the server down with a real SIGTERM.
func TestCmdTrainServeRequestRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a corpus-backed model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	if err := cmdTrain([]string{"-save", model, "-quick", "-clusters", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-quick"}); err == nil {
		t.Error("missing -save accepted")
	}
	if err := cmdTrain([]string{"-save", model, "-quick", "-model", "cnn"}); err == nil {
		t.Error("unknown model accepted")
	}

	if err := cmdExport([]string{"-dir", dir, "-count", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	var mtx string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mtx") {
			mtx = filepath.Join(dir, e.Name())
			break
		}
	}
	if mtx == "" {
		t.Fatal("no exported matrix")
	}

	// Prediction from the saved artifact, no retraining.
	if err := cmdPredict([]string{"-mtx", mtx, "-model", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-mtx", mtx, "-model", mtx}); err == nil {
		t.Error("a .mtx file accepted as a model")
	}

	// Serve it; the portfile tells us the bound port of 127.0.0.1:0.
	portFile := filepath.Join(dir, "port")
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{"-model", model, "-addr", "127.0.0.1:0", "-portfile", portFile})
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never wrote the portfile")
		}
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}

	if err := cmdRequest([]string{"-addr", addr, "-mtx", mtx}); err != nil {
		t.Errorf("matrix request: %v", err)
	}
	// A 3-feature vector must come back as a 400, which request reports
	// as an error.
	if err := cmdRequest([]string{"-addr", addr, "-features", "1,2,3"}); err == nil {
		t.Error("wrong-dimension feature request succeeded")
	}
	if err := cmdRequest([]string{"-addr", addr}); err == nil {
		t.Error("request without a payload accepted")
	}
	if err := cmdRequest([]string{"-mtx", mtx}); err == nil {
		t.Error("request without -addr accepted")
	}

	// Graceful shutdown on a real signal (cmdServe catches it, so the
	// test binary survives).
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
}

// TestCmdTrainClassifier saves a supervised artifact and predicts from
// it.
func TestCmdTrainClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a corpus-backed model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "knn.gob")
	if err := cmdTrain([]string{"-save", model, "-quick", "-model", "knn", "-arch", "Volta"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExport([]string{"-dir", dir, "-count", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mtx") {
			if err := cmdPredict([]string{"-mtx", filepath.Join(dir, e.Name()), "-model", model}); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no exported matrix")
}

// TestCmdObsReportRoundTrip exercises the -obs flag end-to-end on the
// cheapest instrumented command (table -n 1 binds the debug server,
// installs the sink and writes a report without building a corpus),
// then reads the report back through the report subcommand.
func TestCmdObsReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := cmdTable([]string{"-n", "1", "-obs", "127.0.0.1:0", "-report", path}, false); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Error("observability still enabled after the run finished")
	}
	r, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Command != "table" {
		t.Errorf("report command = %q, want table", r.Command)
	}
	if err := cmdReport([]string{"-in", path}); err != nil {
		t.Errorf("report: %v", err)
	}
	if err := cmdReport([]string{"-in", path, "-text"}); err != nil {
		t.Errorf("report -text: %v", err)
	}
	if err := cmdReport([]string{"-in", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing report file accepted")
	}
}

// TestCmdCPUBenchQuickObs runs the measured CPU pipeline with -quick
// and -obs and checks the run report carries the per-stage spans and
// kernel-throughput histograms the acceptance criteria name.
func TestCmdCPUBenchQuickObs(t *testing.T) {
	if testing.Short() {
		t.Skip("cpubench measures real kernels")
	}
	dir := t.TempDir()
	if err := cmdExport([]string{"-dir", dir, "-count", "24", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := cmdCPUBench([]string{"-dir", dir, "-quick", "-obs", "127.0.0.1:0", "-report", path}); err != nil {
		t.Fatal(err)
	}
	r, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.FindSpan("cpubench/measure") == nil {
		t.Error("report has no cpubench/measure span")
	}
	if r.FindSpan("cpubench/train") == nil {
		t.Error("report has no cpubench/train span")
	}
	h, ok := r.Metrics.Histograms["spmv/CSR/rows_per_s"]
	if !ok || h.Count == 0 {
		t.Errorf("report has no CSR kernel-throughput samples: %+v", h)
	}
	if r.Metrics.Counters["cpubench/measured"] == 0 {
		t.Error("cpubench/measured counter is zero")
	}
}
