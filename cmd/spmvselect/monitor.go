package main

// The monitor subcommand: a terminal dashboard over a running serve
// instance's telemetry endpoints. It polls /readyz and /metrics (and,
// given the admin token, /v1/admin/slo and /v1/admin/drift), computes
// request rates by differencing counters between polls, and renders one
// status table per tick. With -once it takes a single sample and exits
// non-zero when anything it needs is missing — the form ci.sh runs as a
// telemetry smoke test.
//
// Pointed at a proxy instead of a single replica (detected by probing
// /v1/fleet), the dashboard switches to the aggregated fleet view:
// replica count, healthy/ejected split, ring size, hedge rate, and one
// row per replica. -once then checks the proxy's own metric families.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/registry"
)

// monitorSample is one poll of the server's telemetry surface.
type monitorSample struct {
	when    time.Time
	ready   bool
	metrics *obs.PromMetrics
	slo     *obs.SLOReport
	drift   *registry.DriftReportData
	// fleet is non-nil when the target is a proxy (it answered
	// /v1/fleet); the dashboard then renders the fleet view.
	fleet *proxy.FleetStatus
}

func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	addr := fs.String("addr", "", "server address host:port (required)")
	token := fs.String("token", "", "admin bearer token; unlocks the SLO and drift panels")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "take one sample, print it, and exit (non-zero when telemetry is missing)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-poll request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("monitor: -addr is required")
	}
	client := &http.Client{Timeout: *timeout}

	var prev *monitorSample
	for {
		cur, err := pollServer(client, *addr, *token)
		if err != nil {
			if *once {
				return fmt.Errorf("monitor: %w", err)
			}
			fmt.Fprintf(os.Stderr, "monitor: %v\n", err)
		} else {
			renderMonitor(os.Stdout, *addr, prev, cur)
			prev = cur
		}
		if *once {
			// One-shot smoke mode: the server must be ready (a reachable
			// but 503 /readyz is a failure, not a dashboard state) and,
			// beyond fetching and parsing, the core request-telemetry
			// families must actually be exposed. Against a proxy the
			// required families are the proxy's own.
			if !cur.ready {
				return fmt.Errorf("monitor: %s is not ready (/readyz answered non-200)", *addr)
			}
			need := []string{"spmvselect_serve_http_seconds", "spmvselect_serve_http_requests_total", "spmvselect_slo_availability"}
			if cur.fleet != nil {
				need = []string{"spmvselect_proxy_requests_total", "spmvselect_proxy_request_seconds", "spmvselect_proxy_replica_healthy"}
			}
			for _, fam := range need {
				if _, ok := cur.metrics.Types[fam]; !ok {
					return fmt.Errorf("monitor: /metrics is missing the %s family", fam)
				}
			}
			return nil
		}
		time.Sleep(*interval)
	}
}

// pollServer samples every telemetry endpoint once. /metrics failing to
// fetch or parse is an error (the dashboard is useless without it);
// admin endpoints are skipped silently when no token was given.
func pollServer(client *http.Client, addr, token string) (*monitorSample, error) {
	s := &monitorSample{when: time.Now()}

	// A proxy answers /v1/fleet with its aggregate status; a serve
	// replica 404s it. An unreachable target is an error either way.
	resp, err := client.Get("http://" + addr + "/v1/fleet")
	if err != nil {
		return nil, fmt.Errorf("polling /v1/fleet: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		var fl proxy.FleetStatus
		err := json.NewDecoder(resp.Body).Decode(&fl)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("decoding /v1/fleet: %w", err)
		}
		s.fleet = &fl
	} else {
		resp.Body.Close()
	}

	resp, err = client.Get("http://" + addr + "/readyz")
	if err != nil {
		return nil, fmt.Errorf("polling /readyz: %w", err)
	}
	resp.Body.Close()
	s.ready = resp.StatusCode == http.StatusOK

	resp, err = client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("polling /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("polling /metrics: server answered %d", resp.StatusCode)
	}
	s.metrics, err = obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}

	// The proxy's admin endpoints fan out and return per-replica
	// envelopes, not the single-server report shapes; the fleet panel
	// already carries the aggregate, so skip them in proxy mode.
	if token != "" && s.fleet == nil {
		var slo obs.SLOReport
		if err := getJSON(client, addr, "/v1/admin/slo", token, &slo); err != nil {
			return nil, err
		}
		s.slo = &slo
		var drift registry.DriftReportData
		err := getJSON(client, addr, "/v1/admin/drift", token, &drift)
		switch {
		case err == nil:
			s.drift = &drift
		case strings.Contains(err.Error(), "501"):
			// Static backend: no drift monitor, not an error.
		default:
			return nil, err
		}
	}
	return s, nil
}

func getJSON(client *http.Client, addr, path, token string, out any) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("polling %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("polling %s: server answered %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	return nil
}

// latencyExemplars collects the per-bucket exemplars of the request
// latency histograms: one row per exposed _exemplar sample, slowest
// first, carrying the trace ID that `spmvselect trace -id` can fetch.
type exemplarRow struct {
	series  string
	le      string
	seconds float64
	traceID string
}

func latencyExemplars(m *obs.PromMetrics) []exemplarRow {
	var out []exemplarRow
	for _, smp := range m.Samples {
		if !strings.HasSuffix(smp.Name, "_exemplar") || smp.Labels["trace_id"] == "" {
			continue
		}
		series := strings.TrimSuffix(strings.TrimPrefix(smp.Name, "spmvselect_"), "_exemplar")
		if ep := smp.Labels["endpoint"]; ep != "" {
			series = ep
		}
		out = append(out, exemplarRow{
			series:  series,
			le:      smp.Labels["le"],
			seconds: smp.Value,
			traceID: smp.Labels["trace_id"],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seconds > out[j].seconds })
	return out
}

// predictionsByArch sums the served-prediction counter per arch.
func predictionsByArch(m *obs.PromMetrics) map[string]float64 {
	out := map[string]float64{}
	for _, smp := range m.Samples {
		if smp.Name == "spmvselect_serve_predictions_total" {
			out[smp.Labels["arch"]] += smp.Value
		}
	}
	return out
}

func renderMonitor(w *os.File, addr string, prev, cur *monitorSample) {
	status := "NOT READY"
	if cur.ready {
		status = "ready"
	}
	mode := ""
	if cur.fleet != nil {
		mode = "  proxy"
	}
	fmt.Fprintf(w, "\n%s  %s%s  [%s]\n", cur.when.Format("15:04:05"), addr, mode, status)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)

	if cur.fleet != nil {
		renderFleet(tw, prev, cur)
		return
	}

	// Predictions per arch, with a rate when a previous sample exists.
	curBy := predictionsByArch(cur.metrics)
	var arches []string
	for a := range curBy {
		arches = append(arches, a)
	}
	sort.Strings(arches)
	var prevBy map[string]float64
	var dt float64
	if prev != nil {
		prevBy = predictionsByArch(prev.metrics)
		dt = cur.when.Sub(prev.when).Seconds()
	}
	fmt.Fprintln(tw, "ARCH\tPREDICTIONS\tRATE")
	for _, a := range arches {
		rate := "-"
		if dt > 0 {
			rate = fmt.Sprintf("%.1f/s", (curBy[a]-prevBy[a])/dt)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%s\n", a, curBy[a], rate)
	}
	if len(arches) == 0 {
		fmt.Fprintln(tw, "-\t0\t-")
	}
	tw.Flush()

	if cur.slo != nil {
		fmt.Fprintln(tw, "\nWINDOW\tREQS\tERRS\tAVAIL\tBURN\tP50\tP95\tP99")
		for _, win := range cur.slo.Windows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.1f\t%s\t%s\t%s\n",
				win.Window, win.Requests, win.Errors, win.Availability, win.BurnRate,
				fmtLatency(win.P50), fmtLatency(win.P95), fmtLatency(win.P99))
		}
		tw.Flush()
	}

	// Latency exemplars: the slowest recently-exemplified buckets, each
	// naming a trace fetchable with `spmvselect trace -id`.
	if ex := latencyExemplars(cur.metrics); len(ex) > 0 {
		const maxRows = 5
		if len(ex) > maxRows {
			ex = ex[:maxRows]
		}
		fmt.Fprintln(tw, "\nEXEMPLAR\tBUCKET\tLATENCY\tTRACE")
		for _, row := range ex {
			fmt.Fprintf(tw, "%s\tle=%s\t%s\t%s\n",
				row.series, row.le, fmtLatency(row.seconds), row.traceID)
		}
		tw.Flush()
	}

	if cur.drift != nil {
		fmt.Fprintln(tw, "\nARCH\tSIGNAL\tSAMPLES\tPSI\tSTATE")
		for _, ar := range cur.drift.Arches {
			for _, sg := range ar.Signals {
				state := "ok"
				if sg.Alert {
					state = "ALERT"
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%s\n", ar.Arch, sg.Signal, sg.Samples, sg.PSI, state)
			}
		}
		if len(cur.drift.Arches) == 0 {
			fmt.Fprintln(tw, "-\t(no baselines installed)\t-\t-\t-")
		}
		tw.Flush()
	}
}

// renderFleet draws the aggregated fleet view of a proxy target: the
// headline counters with a request rate differenced between polls,
// then one row per replica.
func renderFleet(tw *tabwriter.Writer, prev, cur *monitorSample) {
	fl := cur.fleet
	rate := "-"
	if prev != nil && prev.fleet != nil {
		if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
			rate = fmt.Sprintf("%.1f/s", float64(fl.Requests-prev.fleet.Requests)/dt)
		}
	}
	fmt.Fprintln(tw, "REPLICAS\tHEALTHY\tEJECTED\tRING\tREQS\tRATE\tERRS\tHEDGE RATE\tRETRIES")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\t%d\t%.3f\t%d\n",
		fl.ReplicaCount, fl.HealthyCount, fl.ReplicaCount-fl.HealthyCount, fl.RingSize,
		fl.Requests, rate, fl.Errors, fl.HedgeRate, fl.Retries)
	tw.Flush()

	fmt.Fprintln(tw, "\nREPLICA\tSTATE\tEJECTIONS\tLAST ERROR")
	for _, r := range fl.Replicas {
		state := "healthy"
		if !r.Healthy {
			state = "EJECTED"
		}
		lastErr := r.LastError
		if lastErr == "" {
			lastErr = "-"
		} else if len(lastErr) > 60 {
			lastErr = lastErr[:57] + "..."
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", r.Addr, state, r.Ejections, lastErr)
	}
	tw.Flush()
}

func fmtLatency(seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}
