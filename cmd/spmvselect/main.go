// Command spmvselect is the experiment driver for the sparse-format
// selection reproduction: it regenerates every table of the paper,
// exports the synthetic matrix collection, and recommends storage
// formats for MatrixMarket files.
//
// Usage:
//
//	spmvselect table -n <1..9> [-quick]   regenerate one paper table
//	spmvselect tables [-quick]            regenerate every table
//	spmvselect export -dir DIR [-count N] write the collection as .mtx
//	spmvselect predict -mtx FILE [-arch Turing] [-quick]
//	                                      recommend a format for a matrix
//	spmvselect train -save FILE           fit the pipeline once and save the
//	                                      full artifact (model + fitted
//	                                      preprocessing + label mapping)
//	spmvselect serve -models arch=path,.. host one saved artifact per target
//	                                      architecture over HTTP until SIGTERM,
//	                                      with hot-reload (SIGHUP or the admin
//	                                      API) and shadow evaluation
//	spmvselect request -addr HOST:PORT    post one prediction (or batch, or
//	                                      admin call) to a running serve
//	spmvselect promote -addr HOST:PORT    flip an arch's shadow candidate to
//	                                      live through the admin API
//	spmvselect proxy -fleet H:P,H:P,...   front a fleet of serve replicas with
//	                                      consistent-hash routing, health
//	                                      ejection and hedged retries
//	spmvselect rollout -fleet ... -artifact FILE
//	                                      push a candidate to every replica's
//	                                      shadow slot and promote fleet-wide
//	                                      once all clear the agreement bar
//	spmvselect benchfleet                 measure 1-replica vs N-replica
//	                                      throughput through the proxy,
//	                                      gating on byte-identical answers
//	                                      (BENCH_fleet.json)
//	spmvselect monitor -addr HOST:PORT    poll a running serve instance's
//	                                      /metrics, SLO and drift endpoints and
//	                                      render a terminal status table
//	spmvselect replay -dir DIR -addr ...  play a serve -record capture back
//	                                      against a live server, diffing the
//	                                      replayed predictions vs the recording
//	spmvselect benchserve                 measure single-request vs batched
//	                                      serving throughput (BENCH_serve.json)
//	spmvselect benchparse                 measure the streaming MatrixMarket
//	                                      reader vs the byte-slice fast path,
//	                                      gating on bit-identical output
//	                                      (BENCH_parse.json)
//	spmvselect benchreplay                record, feedback and replay a known
//	                                      request mix, gating on reproduced
//	                                      predictions (BENCH_replay.json)
//	spmvselect cpubench -dir DIR          run the pipeline on real measured
//	                                      host-CPU SpMV times over a
//	                                      directory of .mtx(.gz) files
//	spmvselect report                     print the run report of the last
//	                                      instrumented (-obs) run
//	spmvselect trace -addr HOST:PORT      list a serve replica's or proxy's
//	                                      retained request traces, or render
//	                                      one stitched trace as a span tree
//	spmvselect benchtrace                 measure tracing-on vs tracing-off
//	                                      predict latency, merging the gated
//	                                      comparison into BENCH_obs.json
//
// The table, tables and cpubench subcommands accept -obs ADDR, which
// turns on the internal/obs pipeline instrumentation, serves expvar and
// net/http/pprof on ADDR (":0" picks a free port) for the duration of
// the run, and writes a machine-readable run report (-report PATH,
// default obs-run.json) with per-stage span timings and the
// kernel-throughput histograms.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpubench"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table":
		err = cmdTable(os.Args[2:], false)
	case "tables":
		err = cmdTable(os.Args[2:], true)
	case "export":
		err = cmdExport(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "request":
		err = cmdRequest(os.Args[2:])
	case "proxy":
		err = cmdProxy(os.Args[2:])
	case "rollout":
		err = cmdRollout(os.Args[2:])
	case "benchfleet":
		err = cmdBenchFleet(os.Args[2:])
	case "promote":
		err = cmdPromote(os.Args[2:])
	case "monitor":
		err = cmdMonitor(os.Args[2:])
	case "benchserve":
		err = cmdBenchServe(os.Args[2:])
	case "benchparse":
		err = cmdBenchParse(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "benchreplay":
		err = cmdBenchReplay(os.Args[2:])
	case "cpubench":
		err = cmdCPUBench(os.Args[2:])
	case "benchpar":
		err = cmdBenchPar(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "benchtrace":
		err = cmdBenchTrace(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvselect:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spmvselect table -n <1..9> [-quick] [-workers N] [-obs ADDR] [-report PATH]
  spmvselect tables [-quick] [-workers N] [-obs ADDR] [-report PATH]
  spmvselect benchpar [-workers N] [-quick] [-out PATH] [-min-speedup X]
  spmvselect export -dir DIR [-count N] [-seed S]
  spmvselect predict -mtx FILE [-model FILE | -arch Turing [-quick]]
  spmvselect train -save FILE [-arch Turing] [-model semisup|knn|tree|forest|logreg] [-clusters K] [-quick]
             [-cascade [-cascade-target-agreement X] [-cascade-model logreg|forest]]
  spmvselect serve (-model FILE | -models arch=path,...) [-shadow arch=path,...] [-default-arch A]
             [-admin-token T] [-addr :8080] [-portfile PATH] [-max-concurrent N] [-max-batch N]
             [-cache N] [-feat-memo N] [-timeout D] [-obs ADDR] [-access-log PATH] [-access-log-sample N]
             [-slo-target X] [-record DIR] [-record-max-mb N]
             [-trace N] [-trace-slow D] [-trace-sample N] [-debug-dir DIR] [-burn-threshold X]
  spmvselect request -addr HOST:PORT (-mtx FILE | -batch "f1,f2,..." | -features "v1,v2,..." | -get PATH | -post PATH [-json BODY]) [-arch A] [-token T] [-request-id ID] [-timeout D] [-retries N] [-keep-trace] [-v]
  spmvselect promote -addr HOST:PORT -token T [-arch A]
  spmvselect proxy -fleet "H:P,H:P,..." [-addr :8080] [-portfile PATH] [-vnodes N] [-timeout D]
             [-hedge-after D] [-health-interval D] [-max-backoff D]
             [-admin-token T] [-trace N] [-trace-slow D] [-trace-sample N]
  spmvselect rollout -fleet "H:P,..." -artifact FILE -token T [-arch A] [-threshold X] [-min-scored N]
             [-drive DIR] [-timeout D] [-poll D] [-q]
  spmvselect benchfleet [-replicas N] [-matrices N] [-rounds N] [-out PATH] [-min-speedup X]
  spmvselect monitor -addr HOST:PORT [-token T] [-interval D] [-once]
  spmvselect replay -dir DIR -addr HOST:PORT [-concurrency N] [-rate R] [-arch-skew "a=w,..."] [-out PATH]
  spmvselect benchserve [-matrices N] [-batch N] [-rounds N] [-out PATH] [-min-speedup X]
  spmvselect benchparse [-matrices N | -dir DIR] [-rounds N] [-out PATH] [-min-speedup X] [-max-alloc-frac X]
  spmvselect benchreplay [-singles N] [-batches N] [-batch-size N] [-concurrency N] [-out PATH] [-min-speedup X]
  spmvselect cpubench -dir DIR [-trials N] [-clusters K] [-quick] [-obs ADDR] [-report PATH]
  spmvselect report [-in PATH] [-text]
  spmvselect trace -addr HOST:PORT [-id TRACE] [-token T] [-json] [-timeout D]
  spmvselect benchtrace [-matrices N] [-rounds N] [-out PATH] [-max-overhead X]`)
}

func options(quick bool) eval.Options {
	if quick {
		return eval.QuickOptions()
	}
	return eval.PaperOptions()
}

// startObs turns observability on when addr is non-empty: it installs a
// span collector as the sink, serves expvar and net/http/pprof on addr,
// and returns a finish func that tears both down and writes the run
// report. With addr == "" both the returned finish and the run stay
// no-ops.
func startObs(command string, args []string, addr, reportPath string) (func() error, error) {
	if addr == "" {
		return func() error { return nil }, nil
	}
	col := obs.NewCollector()
	obs.SetSink(col)
	bound, stop, err := obs.Serve(addr)
	if err != nil {
		obs.SetSink(nil)
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "obs: serving expvar and pprof on http://%s/debug/\n", bound)
	return func() error {
		obs.SetSink(nil)
		if err := stop(); err != nil {
			return err
		}
		if err := obs.WriteReport(reportPath, col.Report(command, args)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "obs: run report written to %s\n", reportPath)
		return nil
	}, nil
}

// calibrateKernels runs a short measured SpMV sweep over a handful of
// generated matrices so an instrumented run always carries
// kernel-throughput histograms — the simulator-backed tables never
// execute a real kernel.
func calibrateKernels(ctx context.Context) error {
	_, span := obs.Start(ctx, "calibrate")
	defer span.End()
	items, err := dataset.Generate(dataset.Config{
		Seed: 7, BaseCount: 8, Scale: 0.3, DropELLFailures: true,
	})
	if err != nil {
		return fmt.Errorf("calibrating kernels: %w", err)
	}
	for _, it := range items {
		if _, err := cpubench.Measure(it.Matrix, 2); err != nil {
			return fmt.Errorf("calibrating kernels: %w", err)
		}
	}
	span.SetMetric("matrices", float64(len(items)))
	return nil
}

func cmdTable(args []string, all bool) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	n := fs.Int("n", 0, "table number (1-9)")
	quick := fs.Bool("quick", false, "reduced dataset and folds for a fast run")
	workers := fs.Int("workers", 0, "parallel workers across the whole pipeline (0 = GOMAXPROCS)")
	obsAddr := fs.String("obs", "", "enable instrumentation and serve expvar+pprof on this address (:0 picks a port)")
	reportPath := fs.String("report", obs.DefaultReportPath, "run-report path (used with -obs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if all {
		*n = 0
	} else if *n < 1 || *n > 9 {
		return fmt.Errorf("table number %d outside 1..9", *n)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d: must be >= 0", *workers)
	}
	opt := options(*quick)
	if *workers > 0 {
		// Cap the shared obs pool, not just the scheduler, so -workers 1
		// yields a genuinely sequential run all the way down (K-Means,
		// forest training, feature extraction).
		obs.SetMaxWorkers(*workers)
		opt.Workers = *workers
	}

	command := "table"
	if all {
		command = "tables"
	}
	finish, err := startObs(command, args, *obsAddr, *reportPath)
	if err != nil {
		return err
	}
	ctx := context.Background()

	want := func(k int) bool { return all || *n == k }

	if want(1) {
		if err := eval.RenderTable1(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want(2) {
		if err := eval.RenderTable2(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if !all && *n <= 2 {
		return finish()
	}

	if *obsAddr != "" {
		if err := calibrateKernels(ctx); err != nil {
			return err
		}
	}

	tm := obs.StartTimer("cmd/corpus")
	fmt.Fprintf(os.Stderr, "building corpus (quick=%v)...\n", *quick)
	env, err := eval.NewEnv(ctx, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "corpus ready in %v\n", tm.Stop().Round(time.Millisecond))

	run := func(k int, f func() error) error {
		if !want(k) {
			return nil
		}
		t := obs.StartTimer(fmt.Sprintf("cmd/table%d", k))
		if err := f(); err != nil {
			return fmt.Errorf("table %d: %w", k, err)
		}
		fmt.Fprintf(os.Stderr, "table %d done in %v\n", k, t.Stop().Round(time.Millisecond))
		fmt.Println()
		return nil
	}

	if err := run(3, func() error { return eval.RenderTable3(os.Stdout, eval.Table3(env)) }); err != nil {
		return err
	}
	if err := run(4, func() error {
		rows, err := eval.Table4(ctx, env, opt)
		if err != nil {
			return err
		}
		return eval.RenderTable4(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := run(5, func() error {
		rows, err := eval.Table5(ctx, env, opt)
		if err != nil {
			return err
		}
		return eval.RenderTable5(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := run(6, func() error {
		rows, err := eval.Table6(ctx, env, opt)
		if err != nil {
			return err
		}
		return eval.RenderTable6(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := run(7, func() error {
		rows, err := eval.Table7(ctx, env, opt)
		if err != nil {
			return err
		}
		return eval.RenderTable7(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := run(8, func() error { return eval.RenderTable8(os.Stdout, eval.Table8(env)) }); err != nil {
		return err
	}
	if err := run(9, func() error {
		rows, err := eval.Table9(ctx, env, opt)
		if err != nil {
			return err
		}
		return eval.RenderTable9(os.Stdout, rows)
	}); err != nil {
		return err
	}
	return finish()
}

// parallelBench is the committed record of one benchpar run
// (BENCH_parallel.json): the same quick-scale tables rendered
// sequentially and through the parallel scheduler, byte-compared.
type parallelBench struct {
	CPUs              int     `json:"cpus"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Workers           int     `json:"workers"`
	Quick             bool    `json:"quick"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	IdenticalOutput   bool    `json:"identical_output"`
}

// cmdBenchPar times tables 3-8 rendered sequentially (-workers 1) and
// through the parallel scheduler, verifies the two outputs are
// byte-identical, and writes the measurement as JSON. It fails when the
// outputs differ or the speedup falls below the gate, so CI catches both
// determinism and performance regressions.
func cmdBenchPar(args []string) error {
	fs := flag.NewFlagSet("benchpar", flag.ExitOnError)
	workers := fs.Int("workers", 8, "parallel worker count to compare against sequential")
	quick := fs.Bool("quick", true, "use the quick-scale corpus and folds")
	out := fs.String("out", "BENCH_parallel.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail below this sequential/parallel speedup; 0 picks 3.0 when the host has >= workers CPUs and 0.80 otherwise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 2 {
		return fmt.Errorf("benchpar: -workers %d: need >= 2 to compare against sequential", *workers)
	}
	opt := options(*quick)
	ctx := context.Background()
	fmt.Fprintf(os.Stderr, "building corpus (quick=%v)...\n", *quick)
	env, err := eval.NewEnv(ctx, opt)
	if err != nil {
		return err
	}

	renderAll := func(w int) (string, time.Duration, error) {
		prev := obs.SetMaxWorkers(w)
		defer obs.SetMaxWorkers(prev)
		o := opt
		o.Workers = w
		var buf bytes.Buffer
		start := time.Now()
		if err := eval.RenderTable3(&buf, eval.Table3(env)); err != nil {
			return "", 0, err
		}
		rows4, err := eval.Table4(ctx, env, o)
		if err != nil {
			return "", 0, err
		}
		if err := eval.RenderTable4(&buf, rows4); err != nil {
			return "", 0, err
		}
		rows5, err := eval.Table5(ctx, env, o)
		if err != nil {
			return "", 0, err
		}
		if err := eval.RenderTable5(&buf, rows5); err != nil {
			return "", 0, err
		}
		rows6, err := eval.Table6(ctx, env, o)
		if err != nil {
			return "", 0, err
		}
		if err := eval.RenderTable6(&buf, rows6); err != nil {
			return "", 0, err
		}
		rows7, err := eval.Table7(ctx, env, o)
		if err != nil {
			return "", 0, err
		}
		if err := eval.RenderTable7(&buf, rows7); err != nil {
			return "", 0, err
		}
		if err := eval.RenderTable8(&buf, eval.Table8(env)); err != nil {
			return "", 0, err
		}
		return buf.String(), time.Since(start), nil
	}

	fmt.Fprintln(os.Stderr, "sequential pass (workers=1)...")
	seqOut, seqDur, err := renderAll(1)
	if err != nil {
		return fmt.Errorf("benchpar: sequential pass: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sequential: %v\nparallel pass (workers=%d)...\n",
		seqDur.Round(time.Millisecond), *workers)
	parOut, parDur, err := renderAll(*workers)
	if err != nil {
		return fmt.Errorf("benchpar: parallel pass: %w", err)
	}
	fmt.Fprintf(os.Stderr, "parallel:   %v\n", parDur.Round(time.Millisecond))

	res := parallelBench{
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           *workers,
		Quick:             *quick,
		SequentialSeconds: seqDur.Seconds(),
		ParallelSeconds:   parDur.Seconds(),
		Speedup:           seqDur.Seconds() / parDur.Seconds(),
		IdenticalOutput:   seqOut == parOut,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchpar: %d cpus, %d workers: %.2fs sequential, %.2fs parallel (%.2fx), identical=%v -> %s\n",
		res.CPUs, res.Workers, res.SequentialSeconds, res.ParallelSeconds, res.Speedup, res.IdenticalOutput, *out)

	if !res.IdenticalOutput {
		return fmt.Errorf("benchpar: parallel output differs from sequential output")
	}
	gate := *minSpeedup
	if gate == 0 {
		if res.CPUs >= *workers {
			gate = 3.0
		} else {
			// Fewer CPUs than workers: parallelism cannot pay for
			// itself (oversubscribed goroutines share the same cores
			// and fight over cache), so only guard against the
			// scheduler making the run pathologically slower than
			// sequential.
			gate = 0.80
		}
	}
	if res.Speedup < gate {
		return fmt.Errorf("benchpar: speedup %.2fx below the %.2fx gate", res.Speedup, gate)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("dir", "", "output directory (required)")
	count := fs.Int("count", 50, "number of base matrices")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("export: -dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	items, err := dataset.Generate(dataset.Config{
		Seed: *seed, BaseCount: *count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return err
	}
	for _, it := range items {
		path := filepath.Join(*dir, it.Name+".mtx")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := sparse.WriteMatrixMarket(f, it.Matrix); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d matrices to %s\n", len(items), *dir)
	return nil
}

// cmdCPUBench runs the whole pipeline on a directory of MatrixMarket
// files with genuinely measured host-CPU SpMV times: measure each matrix
// in every format, train the semi-supervised selector on a 70% split,
// and report held-out accuracy and speedups. This is the command to
// point at a directory of real SuiteSparse downloads (.mtx or .mtx.gz).
func cmdCPUBench(args []string) error {
	fs := flag.NewFlagSet("cpubench", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of .mtx / .mtx.gz files (required)")
	trials := fs.Int("trials", 5, "SpMV repetitions per kernel")
	clusters := fs.Int("clusters", 40, "number of K-Means clusters")
	quick := fs.Bool("quick", false, "fewer trials and clusters for a fast smoke run")
	obsAddr := fs.String("obs", "", "enable instrumentation and serve expvar+pprof on this address (:0 picks a port)")
	reportPath := fs.String("report", obs.DefaultReportPath, "run-report path (used with -obs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cpubench: -dir is required")
	}
	if *quick {
		// Explicit -trials / -clusters win over the quick defaults.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["trials"] {
			*trials = 2
		}
		if !set["clusters"] {
			*clusters = 8
		}
	}
	finish, err := startObs("cpubench", args, *obsAddr, *reportPath)
	if err != nil {
		return err
	}
	ctx, span := obs.Start(context.Background(), "cpubench")
	err = runCPUBench(ctx, *dir, *trials, *clusters)
	span.End()
	if err != nil {
		return err
	}
	return finish()
}

func runCPUBench(ctx context.Context, dirPath string, trials, clusters int) error {
	entries, err := os.ReadDir(dirPath)
	if err != nil {
		return err
	}
	var names []string
	var ms []*sparse.CSR
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mtx") && !strings.HasSuffix(name, ".mtx.gz") {
			continue
		}
		m, err := sparse.ReadMatrixMarketFile(filepath.Join(dirPath, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", name, err)
			continue
		}
		names = append(names, name)
		ms = append(ms, m)
	}
	if len(ms) < 10 {
		return fmt.Errorf("cpubench: only %d readable matrices in %s; need >= 10", len(ms), dirPath)
	}
	fmt.Printf("measuring %d matrices x %d formats (%d trials each)...\n",
		len(ms), sparse.NumKernelFormats, trials)
	_, msp := obs.Start(ctx, "measure")
	lab, dropped, err := cpubench.MeasureAll(names, ms, trials)
	msp.SetMetric("matrices", float64(len(ms)))
	msp.End()
	if err != nil {
		return err
	}
	fmt.Printf("%d measured, %d dropped (a format was infeasible)\n", len(lab.Names), dropped)

	byName := map[string]*sparse.CSR{}
	for i, n := range names {
		byName[n] = ms[i]
	}
	kept := make([]*sparse.CSR, len(lab.Names))
	best := make([]sparse.Format, len(lab.Names))
	counts := make(map[sparse.Format]int)
	for i, n := range lab.Names {
		kept[i] = byName[n]
		best[i] = sparse.KernelFormats()[lab.Labels[i]]
		counts[best[i]]++
	}
	fmt.Print("best-format distribution:")
	for _, f := range sparse.KernelFormats() {
		fmt.Printf("  %v %d", f, counts[f])
	}
	fmt.Println()
	if len(kept) < 10 {
		return fmt.Errorf("cpubench: only %d measurable matrices; need >= 10", len(kept))
	}

	cut := len(kept) * 7 / 10
	_, tsp := obs.Start(ctx, "train")
	sel, err := core.TrainSelector(kept[:cut], best[:cut], core.Options{NumClusters: clusters, Seed: 1})
	tsp.End()
	if err != nil {
		return err
	}
	hit := 0
	var logCSR float64
	csrIdx := 1 // KernelFormats order: COO, CSR, ELL, HYB
	for i := cut; i < len(kept); i++ {
		pred := sel.Select(kept[i])
		if pred == best[i] {
			hit++
		}
		pi := 0
		for k, f := range sparse.KernelFormats() {
			if f == pred {
				pi = k
			}
		}
		logCSR += math.Log(lab.Times[i][csrIdx] / lab.Times[i][pi])
	}
	n := float64(len(kept) - cut)
	fmt.Printf("held-out accuracy:            %.1f%% (%d matrices)\n", 100*float64(hit)/n, len(kept)-cut)
	fmt.Printf("speedup over always-CSR (GM): %.3fX\n", math.Exp(logCSR/n))
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	mtx := fs.String("mtx", "", "MatrixMarket file (required)")
	model := fs.String("model", "", "predict from this saved model file instead of training")
	archName := fs.String("arch", "Turing", "target architecture (Pascal, Volta, Turing)")
	quick := fs.Bool("quick", false, "train on a reduced corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mtx == "" {
		return fmt.Errorf("predict: -mtx is required")
	}
	f, err := os.Open(*mtx)
	if err != nil {
		return err
	}
	m, err := sparse.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *mtx, err)
	}
	rows, cols := m.Dims()
	fmt.Printf("matrix: %s (%dx%d, %d nonzeros)\n", filepath.Base(*mtx), rows, cols, m.NNZ())

	if *model != "" {
		// Predict from a saved artifact: no training, no corpus.
		art, err := serve.LoadFile(*model)
		if err != nil {
			return err
		}
		pred, err := art.PredictMatrix(m)
		if err != nil {
			return err
		}
		fmt.Printf("model: %s (%s, trained for %s)\n", *model, art.Kind, art.Arch)
		fmt.Printf("recommended format: %s\n", pred.Format)
		if pred.Cluster >= 0 {
			fmt.Printf("explanation: cluster %d (%d training matrices) votes label %d\n",
				pred.Cluster, pred.ClusterSize, pred.Label)
		}
		return nil
	}

	// Train a selector on the synthetic corpus labelled for the target
	// architecture.
	ms, best, arch, err := labelledTrainingSet(*archName, *quick)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 200, Seed: 1})
	if err != nil {
		return err
	}
	e := sel.Explain(m)
	fmt.Printf("target: %s (%s)\n", arch.Name, arch.Model)
	fmt.Printf("recommended format: %v\n", e.Format)
	fmt.Printf("explanation: %s\n", e)
	fmt.Printf("features: %s\n", e.Features)
	return nil
}

// cmdReport prints the run report written by an earlier instrumented
// (-obs) run: JSON by default, or the span tree as text with -text.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	in := fs.String("in", obs.DefaultReportPath, "run-report file to read")
	text := fs.Bool("text", false, "render the span tree as text instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := obs.ReadReport(*in)
	if err != nil {
		return err
	}
	if *text {
		fmt.Printf("spmvselect %s %s (%v, go %s %s/%s, %d cpu)\n",
			r.Command, strings.Join(r.Args, " "),
			r.Duration.Round(time.Millisecond), r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
		return obs.WriteTree(os.Stdout, r.Spans)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}
