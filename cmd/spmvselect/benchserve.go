package main

// benchserve measures the serving path: the same set of matrices
// predicted one HTTP request at a time versus grouped into
// /v1/predict/batch requests, against a real loopback listener so
// per-request overhead (connection handling, routing, body copies) is
// part of what batching has to amortise. The result is committed as
// BENCH_serve.json and gated so CI catches the batch path regressing
// below plain sequential serving.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// latencyQuantiles summarises the per-request latencies of one endpoint
// across every timed round.
type latencyQuantiles struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// quantiles computes the summary by nearest-rank over the recorded
// request durations.
func quantiles(durs []time.Duration) latencyQuantiles {
	if len(durs) == 0 {
		return latencyQuantiles{}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return latencyQuantiles{
		Requests: len(sorted),
		P50Ms:    at(0.50),
		P95Ms:    at(0.95),
		P99Ms:    at(0.99),
		MaxMs:    float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// serveBench is the committed record of one benchserve run.
type serveBench struct {
	CPUs          int     `json:"cpus"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Matrices      int     `json:"matrices"`
	BatchSize     int     `json:"batch_size"`
	Rounds        int     `json:"rounds"`
	SingleSeconds float64 `json:"single_seconds"`
	BatchSeconds  float64 `json:"batch_seconds"`
	// SingleRPS / BatchRPS are predictions per second through each path.
	SingleRPS float64 `json:"single_rps"`
	BatchRPS  float64 `json:"batch_rps"`
	// Speedup = BatchRPS / SingleRPS for the same total predictions.
	Speedup float64 `json:"speedup"`
	// Per-request HTTP latency quantiles over every timed round; one
	// batch request carries -batch matrices, so its latencies are not
	// per-prediction.
	SingleLatency latencyQuantiles `json:"single_latency"`
	BatchLatency  latencyQuantiles `json:"batch_latency"`
}

func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("benchserve", flag.ExitOnError)
	count := fs.Int("matrices", 24, "number of distinct matrices in the request mix")
	batchSize := fs.Int("batch", 8, "matrices per /v1/predict/batch request")
	rounds := fs.Int("rounds", 3, "passes over the matrix set per path")
	clusters := fs.Int("clusters", 16, "K-Means clusters for the served model")
	out := fs.String("out", "BENCH_serve.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail below this batch/single throughput ratio; 0 picks 2.0 when the host has >= 4 CPUs and 0.80 otherwise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batchSize < 2 {
		return fmt.Errorf("benchserve: -batch %d: need >= 2 to amortise anything", *batchSize)
	}

	ms, best, arch, err := labelledTrainingSet("Turing", true)
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchserve: training semisup on %d matrices (%s)...\n", len(ms), arch.Name)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), arch.Name)

	// The request mix reuses the corpus generator at a different seed so
	// the served matrices are not the training set.
	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: *count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	if len(items) < *count {
		*count = len(items)
	}
	bodies := make([][]byte, *count)
	for i := 0; i < *count; i++ {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, items[i].Matrix); err != nil {
			return fmt.Errorf("benchserve: %w", err)
		}
		bodies[i] = buf.Bytes()
	}
	// Batches use the text form — concatenated MatrixMarket files — so
	// the server splits on banner lines instead of JSON-decoding
	// megabytes of escaped matrix text.
	var batchBodies [][]byte
	for lo := 0; lo < *count; lo += *batchSize {
		hi := min(lo+*batchSize, *count)
		batchBodies = append(batchBodies, bytes.Join(bodies[lo:hi], nil))
	}

	// Cache disabled: round two onward must recompute, not replay the LRU.
	srv, err := serve.NewServer(art, serve.Config{CacheSize: -1, MaxBatchItems: *count})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: srv.Handler()}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: time.Minute}

	// post times each request; lat != nil collects the duration (timed
	// rounds record, warmup passes nil and stays out of the quantiles).
	post := func(path string, body []byte, contentType string, lat *[]time.Duration) error {
		start := time.Now()
		resp, err := client.Post(base+path, contentType, bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var ans struct {
			Errors  int    `json:"errors"`
			Format  string `json:"format"`
			Message string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return fmt.Errorf("POST %s: %w", path, err)
		}
		if lat != nil {
			*lat = append(*lat, time.Since(start))
		}
		if resp.StatusCode != http.StatusOK || ans.Errors != 0 {
			return fmt.Errorf("POST %s: %s (%d item errors) %s", path, resp.Status, ans.Errors, ans.Message)
		}
		return nil
	}
	var singleLat, batchLat []time.Duration
	singlePass := func(record bool) error {
		lat := &singleLat
		if !record {
			lat = nil
		}
		for _, b := range bodies {
			if err := post("/v1/predict/matrix", b, "text/plain", lat); err != nil {
				return err
			}
		}
		return nil
	}
	batchPass := func(record bool) error {
		lat := &batchLat
		if !record {
			lat = nil
		}
		for _, b := range batchBodies {
			if err := post("/v1/predict/batch", b, "text/plain", lat); err != nil {
				return err
			}
		}
		return nil
	}

	// One untimed pass of each warms the connection pool and the scratch
	// buffers before measurement.
	if err := singlePass(false); err != nil {
		return fmt.Errorf("benchserve: warmup: %w", err)
	}
	if err := batchPass(false); err != nil {
		return fmt.Errorf("benchserve: warmup: %w", err)
	}

	fmt.Fprintf(os.Stderr, "benchserve: %d matrices x %d rounds, batch size %d...\n",
		*count, *rounds, *batchSize)
	// Best-of-rounds: each round serves the full matrix set, and the
	// fastest round represents the path (scheduler noise only ever adds
	// time).
	timePasses := func(pass func(record bool) error) (time.Duration, error) {
		var best time.Duration
		for r := 0; r < *rounds; r++ {
			start := time.Now()
			if err := pass(true); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	singleDur, err := timePasses(singlePass)
	if err != nil {
		return fmt.Errorf("benchserve: single pass: %w", err)
	}
	batchDur, err := timePasses(batchPass)
	if err != nil {
		return fmt.Errorf("benchserve: batch pass: %w", err)
	}

	total := float64(*count)
	res := serveBench{
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Matrices:      *count,
		BatchSize:     *batchSize,
		Rounds:        *rounds,
		SingleSeconds: singleDur.Seconds(),
		BatchSeconds:  batchDur.Seconds(),
		SingleRPS:     total / singleDur.Seconds(),
		BatchRPS:      total / batchDur.Seconds(),
		Speedup:       singleDur.Seconds() / batchDur.Seconds(),
		SingleLatency: quantiles(singleLat),
		BatchLatency:  quantiles(batchLat),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchserve: %d cpus: %.0f predictions in %.2fs single (%.0f/s) vs %.2fs batched (%.0f/s), %.2fx -> %s\n",
		res.CPUs, total, res.SingleSeconds, res.SingleRPS, res.BatchSeconds, res.BatchRPS, res.Speedup, *out)
	fmt.Printf("benchserve: single latency p50 %.2fms p95 %.2fms p99 %.2fms; batch p50 %.2fms p95 %.2fms p99 %.2fms\n",
		res.SingleLatency.P50Ms, res.SingleLatency.P95Ms, res.SingleLatency.P99Ms,
		res.BatchLatency.P50Ms, res.BatchLatency.P95Ms, res.BatchLatency.P99Ms)

	gate := *minSpeedup
	if gate == 0 {
		if res.CPUs >= 4 {
			// Batch fan-out across the obs worker pool should beat
			// request-at-a-time serving comfortably on a multicore host.
			gate = 2.0
		} else {
			// Too few cores for parallel extraction to pay; only guard
			// against the batch path being pathologically slower than
			// sequential requests.
			gate = 0.80
		}
	}
	if res.Speedup < gate {
		return fmt.Errorf("benchserve: batch speedup %.2fx below the %.2fx gate", res.Speedup, gate)
	}
	return nil
}
