package main

// benchserve measures the serving path: the same set of matrices
// predicted one HTTP request at a time versus grouped into
// /v1/predict/batch requests, against a real loopback listener so
// per-request overhead (connection handling, routing, body copies) is
// part of what batching has to amortise — plus a cascade-on vs
// cascade-off single-predict comparison of the same model with and
// without the cheap-first stage, and a feature-memo on/off comparison
// on repeat bodies. The result is committed as BENCH_serve.json and
// gated so CI catches the batch path regressing below plain sequential
// serving, the cascade threshold missing its calibrated agreement
// target, the cheap path losing its latency advantage on
// above-threshold traffic, or the memo losing its repeat-body win.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// latencyQuantiles summarises the per-request latencies of one endpoint
// across every timed round.
type latencyQuantiles struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// quantiles computes the summary by nearest-rank over the recorded
// request durations.
func quantiles(durs []time.Duration) latencyQuantiles {
	if len(durs) == 0 {
		return latencyQuantiles{}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return latencyQuantiles{
		Requests: len(sorted),
		P50Ms:    at(0.50),
		P95Ms:    at(0.95),
		P99Ms:    at(0.99),
		MaxMs:    float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// serveBench is the committed record of one benchserve run.
type serveBench struct {
	CPUs          int     `json:"cpus"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Matrices      int     `json:"matrices"`
	BatchSize     int     `json:"batch_size"`
	Rounds        int     `json:"rounds"`
	SingleSeconds float64 `json:"single_seconds"`
	BatchSeconds  float64 `json:"batch_seconds"`
	// SingleRPS / BatchRPS are predictions per second through each path.
	SingleRPS float64 `json:"single_rps"`
	BatchRPS  float64 `json:"batch_rps"`
	// Speedup = BatchRPS / SingleRPS for the same total predictions.
	Speedup float64 `json:"speedup"`
	// Per-request HTTP latency quantiles over every timed round; one
	// batch request carries -batch matrices, so its latencies are not
	// per-prediction.
	SingleLatency latencyQuantiles `json:"single_latency"`
	BatchLatency  latencyQuantiles `json:"batch_latency"`
	// Cascade-on vs cascade-off single-predict comparison: the same
	// request mix served by the same model with and without the
	// cheap-first stage (per-body best-of-rounds latencies).
	CascadeSeconds float64          `json:"cascade_seconds"`
	CascadeRPS     float64          `json:"cascade_rps"`
	CascadeLatency latencyQuantiles `json:"cascade_latency"`
	// CascadeHitRate is the cheap-stage answer fraction on the bench
	// mix; CascadeMixAgreement the cascade-on/off format agreement on
	// the full mix; the Heldout/Target pair is the train-time
	// calibration the agreement gate enforces.
	CascadeHitRate          float64 `json:"cascade_hit_rate"`
	CascadeMixAgreement     float64 `json:"cascade_mix_agreement"`
	CascadeHeldoutAgreement float64 `json:"cascade_heldout_agreement"`
	CascadeTargetAgreement  float64 `json:"cascade_target_agreement"`
	CascadeThreshold        float64 `json:"cascade_threshold"`
	// P50s over the above-threshold subset (requests the cheap stage
	// answered), the traffic the cascade is supposed to accelerate.
	CascadeP50OffMs      float64 `json:"cascade_p50_off_ms"`
	CascadeP50OnMs       float64 `json:"cascade_p50_on_ms"`
	CascadeSpeedupAboveT float64 `json:"cascade_speedup_above_threshold"`
	// Feature-memo on vs off: the same model and mix with the
	// body-hash→features memo enabled, every timed request a repeat
	// body (the off column is the memo-disabled baseline above).
	MemoP50OffMs float64 `json:"memo_p50_off_ms"`
	MemoP50OnMs  float64 `json:"memo_p50_on_ms"`
	MemoSpeedup  float64 `json:"memo_speedup"`
	// MemoHitRate is hits/(hits+misses) over the memo pass; warmup
	// misses once per body, every timed round hits.
	MemoHitRate float64 `json:"memo_hit_rate"`
}

func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("benchserve", flag.ExitOnError)
	count := fs.Int("matrices", 24, "number of distinct matrices in the request mix")
	batchSize := fs.Int("batch", 8, "matrices per /v1/predict/batch request")
	rounds := fs.Int("rounds", 3, "passes over the matrix set per path")
	clusters := fs.Int("clusters", 16, "K-Means clusters for the served model")
	out := fs.String("out", "BENCH_serve.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail below this batch/single throughput ratio; 0 picks 2.0 when the host has >= 4 CPUs and 0.80 otherwise")
	cascadeTarget := fs.Float64("cascade-target-agreement", 0.90,
		"agreement target the cascade threshold is calibrated to")
	cascadeMinSpeedup := fs.Float64("cascade-min-speedup", 0,
		"fail below this cascade-on/off p50 ratio on above-threshold traffic; 0 picks 2.0 when the host has >= 4 CPUs and 0.80 otherwise")
	memoMinSpeedup := fs.Float64("memo-min-speedup", 0,
		"fail below this memo-on/off p50 ratio on repeat bodies; 0 picks 1.2 when the host has >= 4 CPUs and 0.80 otherwise")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batchSize < 2 {
		return fmt.Errorf("benchserve: -batch %d: need >= 2 to amortise anything", *batchSize)
	}

	ms, best, arch, err := labelledTrainingSet("Turing", true)
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchserve: training semisup on %d matrices (%s)...\n", len(ms), arch.Name)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), arch.Name)

	// The request mix reuses the corpus generator at a different seed so
	// the served matrices are not the training set.
	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: *count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	if len(items) < *count {
		*count = len(items)
	}
	bodies := make([][]byte, *count)
	for i := 0; i < *count; i++ {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, items[i].Matrix); err != nil {
			return fmt.Errorf("benchserve: %w", err)
		}
		bodies[i] = buf.Bytes()
	}
	// Batches use the text form — concatenated MatrixMarket files — so
	// the server splits on banner lines instead of JSON-decoding
	// megabytes of escaped matrix text.
	var batchBodies [][]byte
	for lo := 0; lo < *count; lo += *batchSize {
		hi := min(lo+*batchSize, *count)
		batchBodies = append(batchBodies, bytes.Join(bodies[lo:hi], nil))
	}

	// Cache and feature memo disabled: round two onward must recompute —
	// parse, extract, infer — not replay either cache.
	srv, err := serve.NewServer(art, serve.Config{CacheSize: -1, FeatMemoSize: -1, MaxBatchItems: *count})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: srv.Handler()}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: time.Minute}

	// post times each request; lat != nil collects the duration (timed
	// rounds record, warmup passes nil and stays out of the quantiles).
	post := func(path string, body []byte, contentType string, lat *[]time.Duration) error {
		start := time.Now()
		resp, err := client.Post(base+path, contentType, bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var ans struct {
			Errors  int    `json:"errors"`
			Format  string `json:"format"`
			Message string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return fmt.Errorf("POST %s: %w", path, err)
		}
		if lat != nil {
			*lat = append(*lat, time.Since(start))
		}
		if resp.StatusCode != http.StatusOK || ans.Errors != 0 {
			return fmt.Errorf("POST %s: %s (%d item errors) %s", path, resp.Status, ans.Errors, ans.Message)
		}
		return nil
	}
	var singleLat, batchLat []time.Duration
	singlePass := func(record bool) error {
		lat := &singleLat
		if !record {
			lat = nil
		}
		for _, b := range bodies {
			if err := post("/v1/predict/matrix", b, "text/plain", lat); err != nil {
				return err
			}
		}
		return nil
	}
	batchPass := func(record bool) error {
		lat := &batchLat
		if !record {
			lat = nil
		}
		for _, b := range batchBodies {
			if err := post("/v1/predict/batch", b, "text/plain", lat); err != nil {
				return err
			}
		}
		return nil
	}

	// One untimed pass of each warms the connection pool and the scratch
	// buffers before measurement.
	if err := singlePass(false); err != nil {
		return fmt.Errorf("benchserve: warmup: %w", err)
	}
	if err := batchPass(false); err != nil {
		return fmt.Errorf("benchserve: warmup: %w", err)
	}

	fmt.Fprintf(os.Stderr, "benchserve: %d matrices x %d rounds, batch size %d...\n",
		*count, *rounds, *batchSize)
	// Best-of-rounds: each round serves the full matrix set, and the
	// fastest round represents the path (scheduler noise only ever adds
	// time).
	timePasses := func(pass func(record bool) error) (time.Duration, error) {
		var best time.Duration
		for r := 0; r < *rounds; r++ {
			start := time.Now()
			if err := pass(true); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	singleDur, err := timePasses(singlePass)
	if err != nil {
		return fmt.Errorf("benchserve: single pass: %w", err)
	}
	batchDur, err := timePasses(batchPass)
	if err != nil {
		return fmt.Errorf("benchserve: batch pass: %w", err)
	}

	// Cascade comparison: the same semisup model with a distilled
	// cheap-first stage, on its own listener, against the same mix.
	casc, err := serve.TrainCascade(art, features.Matrix(features.ExtractAll(ms)),
		serve.CascadeOptions{TargetAgreement: *cascadeTarget, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchserve: %w", err)
	}
	if casc.Threshold > 1 {
		return fmt.Errorf("benchserve: cascade calibration could not reach target agreement %.2f", *cascadeTarget)
	}
	cart := *art
	cart.Cascade = casc
	csrv, err := serve.NewServer(&cart, serve.Config{CacheSize: -1, FeatMemoSize: -1, MaxBatchItems: *count})
	if err != nil {
		return err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	cserver := &http.Server{Handler: csrv.Handler()}
	go cserver.Serve(cln)
	defer cserver.Close()
	cbase := "http://" + cln.Addr().String()

	// measure serves every body -rounds times against one base URL and
	// keeps the per-body minimum latency (scheduler noise only ever adds
	// time), plus the answered format and cascade stage.
	measure := func(base string) (lat []time.Duration, formats, stages []string, err error) {
		lat = make([]time.Duration, len(bodies))
		formats = make([]string, len(bodies))
		stages = make([]string, len(bodies))
		one := func(i int, record bool) error {
			start := time.Now()
			resp, err := client.Post(base+"/v1/predict/matrix", "text/plain", bytes.NewReader(bodies[i]))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			var ans struct {
				Format string `json:"format"`
				Stage  string `json:"stage"`
				Msg    string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
				return err
			}
			d := time.Since(start)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s %s", resp.Status, ans.Msg)
			}
			if record {
				if lat[i] == 0 || d < lat[i] {
					lat[i] = d
				}
				formats[i], stages[i] = ans.Format, ans.Stage
			}
			return nil
		}
		for i := range bodies { // warmup
			if err := one(i, false); err != nil {
				return nil, nil, nil, err
			}
		}
		for r := 0; r < *rounds; r++ {
			for i := range bodies {
				if err := one(i, true); err != nil {
					return nil, nil, nil, err
				}
			}
		}
		return lat, formats, stages, nil
	}
	fmt.Fprintf(os.Stderr, "benchserve: cascade threshold %.3f (held-out agreement %.3f), comparing on/off...\n",
		casc.Threshold, casc.HeldoutAgreement)
	offLat, offFmt, _, err := measure(base)
	if err != nil {
		return fmt.Errorf("benchserve: cascade-off pass: %w", err)
	}
	onLat, onFmt, onStage, err := measure(cbase)
	if err != nil {
		return fmt.Errorf("benchserve: cascade-on pass: %w", err)
	}

	// Feature-memo comparison: the same artifact with the body-hash
	// memo enabled, on its own listener. measure's warmup pass populates
	// the memo (one miss per body), so every timed request afterwards is
	// a repeat — exactly the traffic the memo fronts.
	msrv, err := serve.NewServer(art, serve.Config{CacheSize: -1, MaxBatchItems: *count})
	if err != nil {
		return err
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	mserver := &http.Server{Handler: msrv.Handler()}
	go mserver.Serve(mln)
	defer mserver.Close()
	mhits0, mmisses0 := msrv.FeatMemoStats()
	fmt.Fprintln(os.Stderr, "benchserve: memo-on pass...")
	memoLat, memoFmt, _, err := measure("http://" + mln.Addr().String())
	if err != nil {
		return fmt.Errorf("benchserve: memo-on pass: %w", err)
	}
	mhits, mmisses := msrv.FeatMemoStats()
	mhits, mmisses = mhits-mhits0, mmisses-mmisses0
	// Memoized features must be invisible in the answers: any format
	// differing from the computed baseline means the memo served wrong
	// or stale features, and no measurement excuses that.
	for i := range bodies {
		if memoFmt[i] != offFmt[i] {
			return fmt.Errorf("benchserve: body %d: memo-on server answered %q, memo-off %q — memoized features changed a prediction",
				i, memoFmt[i], offFmt[i])
		}
	}
	var aboveOn, aboveOff []time.Duration
	var cascadeSum time.Duration
	agree, hits := 0, 0
	for i := range bodies {
		cascadeSum += onLat[i]
		if onFmt[i] == offFmt[i] {
			agree++
		}
		if onStage[i] == serve.StageCheap {
			hits++
			aboveOn = append(aboveOn, onLat[i])
			aboveOff = append(aboveOff, offLat[i])
		}
	}

	total := float64(*count)
	res := serveBench{
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Matrices:      *count,
		BatchSize:     *batchSize,
		Rounds:        *rounds,
		SingleSeconds: singleDur.Seconds(),
		BatchSeconds:  batchDur.Seconds(),
		SingleRPS:     total / singleDur.Seconds(),
		BatchRPS:      total / batchDur.Seconds(),
		Speedup:       singleDur.Seconds() / batchDur.Seconds(),
		SingleLatency: quantiles(singleLat),
		BatchLatency:  quantiles(batchLat),

		CascadeSeconds:          cascadeSum.Seconds(),
		CascadeRPS:              total / cascadeSum.Seconds(),
		CascadeLatency:          quantiles(onLat),
		CascadeHitRate:          float64(hits) / total,
		CascadeMixAgreement:     float64(agree) / total,
		CascadeHeldoutAgreement: casc.HeldoutAgreement,
		CascadeTargetAgreement:  casc.TargetAgreement,
		CascadeThreshold:        casc.Threshold,
	}
	if hits > 0 {
		res.CascadeP50OffMs = quantiles(aboveOff).P50Ms
		res.CascadeP50OnMs = quantiles(aboveOn).P50Ms
		if res.CascadeP50OnMs > 0 {
			res.CascadeSpeedupAboveT = res.CascadeP50OffMs / res.CascadeP50OnMs
		}
	}
	res.MemoP50OffMs = quantiles(offLat).P50Ms
	res.MemoP50OnMs = quantiles(memoLat).P50Ms
	if res.MemoP50OnMs > 0 {
		res.MemoSpeedup = res.MemoP50OffMs / res.MemoP50OnMs
	}
	if mhits+mmisses > 0 {
		res.MemoHitRate = float64(mhits) / float64(mhits+mmisses)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchserve: %d cpus: %.0f predictions in %.2fs single (%.0f/s) vs %.2fs batched (%.0f/s), %.2fx -> %s\n",
		res.CPUs, total, res.SingleSeconds, res.SingleRPS, res.BatchSeconds, res.BatchRPS, res.Speedup, *out)
	fmt.Printf("benchserve: single latency p50 %.2fms p95 %.2fms p99 %.2fms; batch p50 %.2fms p95 %.2fms p99 %.2fms\n",
		res.SingleLatency.P50Ms, res.SingleLatency.P95Ms, res.SingleLatency.P99Ms,
		res.BatchLatency.P50Ms, res.BatchLatency.P95Ms, res.BatchLatency.P99Ms)

	gate := *minSpeedup
	if gate == 0 {
		if res.CPUs >= 4 {
			// Batch fan-out across the obs worker pool should beat
			// request-at-a-time serving comfortably on a multicore host.
			gate = 2.0
		} else {
			// Too few cores for parallel extraction to pay; only guard
			// against the batch path being pathologically slower than
			// sequential requests.
			gate = 0.80
		}
	}
	if res.Speedup < gate {
		return fmt.Errorf("benchserve: batch speedup %.2fx below the %.2fx gate", res.Speedup, gate)
	}

	fmt.Printf("benchserve: cascade hit rate %.2f, mix agreement %.2f, p50 %.2fms off vs %.2fms on above threshold (%.2fx)\n",
		res.CascadeHitRate, res.CascadeMixAgreement, res.CascadeP50OffMs, res.CascadeP50OnMs, res.CascadeSpeedupAboveT)
	// The agreement gate is machine-independent: the calibrated
	// threshold must actually deliver the target on held-out data.
	if res.CascadeHeldoutAgreement < res.CascadeTargetAgreement {
		return fmt.Errorf("benchserve: cascade held-out agreement %.3f below target %.2f",
			res.CascadeHeldoutAgreement, res.CascadeTargetAgreement)
	}
	if hits == 0 {
		return fmt.Errorf("benchserve: cascade cheap stage never fired on the bench mix")
	}
	cgate := *cascadeMinSpeedup
	if cgate == 0 {
		if res.CPUs >= 4 {
			// Skipping full extraction + PCA + cluster lookup should at
			// least halve p50 on confident traffic when the host isn't
			// starved for cores.
			cgate = 2.0
		} else {
			// On a small box HTTP + parse overhead dominates both paths;
			// only guard against the cascade being pathologically slower.
			cgate = 0.80
		}
	}
	if res.CascadeSpeedupAboveT < cgate {
		return fmt.Errorf("benchserve: cascade p50 speedup %.2fx below the %.2fx gate on above-threshold traffic",
			res.CascadeSpeedupAboveT, cgate)
	}

	fmt.Printf("benchserve: feature memo hit rate %.2f, p50 %.2fms off vs %.2fms on repeat bodies (%.2fx)\n",
		res.MemoHitRate, res.MemoP50OffMs, res.MemoP50OnMs, res.MemoSpeedup)
	if mhits == 0 {
		return fmt.Errorf("benchserve: feature memo never hit across %d repeat requests", *rounds**count)
	}
	mgate := *memoMinSpeedup
	if mgate == 0 {
		if res.CPUs >= 4 {
			// A memo hit skips MatrixMarket parsing and feature
			// extraction; even with HTTP overhead in both columns the
			// repeat-body p50 should drop noticeably.
			mgate = 1.2
		} else {
			// On a starved host per-request overhead dominates; only
			// guard against the memo path being pathologically slower.
			mgate = 0.80
		}
	}
	if res.MemoSpeedup < mgate {
		return fmt.Errorf("benchserve: memo p50 speedup %.2fx below the %.2fx gate on repeat bodies",
			res.MemoSpeedup, mgate)
	}
	return nil
}
