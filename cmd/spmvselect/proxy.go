package main

// The fleet subcommands: proxy is the consistent-hash front door over
// N serve replicas (hedged retries, health ejection, fleet-wide
// telemetry aggregation), rollout pushes a candidate artifact to every
// replica's shadow slot and promotes only when the whole fleet's
// agreement clears the threshold.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/proxy"
)

// parseFleet splits a comma-separated replica list into addresses.
func parseFleet(spec string) ([]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-fleet is required (comma-separated host:port replicas)")
	}
	var out []string
	for _, a := range strings.Split(spec, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet named no replicas")
	}
	return out, nil
}

// cmdProxy runs the fleet front door until SIGINT/SIGTERM.
func cmdProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	fleet := fs.String("fleet", "", "comma-separated serve replicas, e.g. \"127.0.0.1:9001,127.0.0.1:9002\" (required)")
	addr := fs.String("addr", ":8080", "listen address (:0 picks a free port)")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = 64)")
	timeout := fs.Duration("timeout", 30*time.Second, "end-to-end budget per client request, hedges and retries included")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "race a second replica when the ring owner is slower than this")
	healthInterval := fs.Duration("health-interval", time.Second, "spacing of the /readyz probes")
	maxBackoff := fs.Duration("max-backoff", 15*time.Second, "cap on the readmit-probe backoff for ejected replicas")
	adminToken := fs.String("admin-token", "", "bearer token required by the proxy's own /v1/admin/trace endpoints (unset disables them)")
	traceCap := fs.Int("trace", 0, "tail-sampled trace store capacity in entries (0 = 128, negative disables tracing)")
	traceSlow := fs.Duration("trace-slow", 0, "latency above which a proxied request is kept as slow (0 = 250ms, negative disables)")
	traceSample := fs.Int("trace-sample", 0, "keep 1-in-N otherwise-uninteresting traces (0 = 100, negative disables sampling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	replicas, err := parseFleet(*fleet)
	if err != nil {
		return fmt.Errorf("proxy: %w", err)
	}

	p, err := proxy.New(proxy.Config{
		Replicas:       replicas,
		Vnodes:         *vnodes,
		Timeout:        *timeout,
		HedgeAfter:     *hedgeAfter,
		HealthInterval: *healthInterval,
		MaxBackoff:     *maxBackoff,
		AdminToken:     *adminToken,
		TraceCapacity:  *traceCap,
		SlowRequest:    *traceSlow,
		TraceSample:    *traceSample,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return p.Run(ctx, *addr, func(bound string) {
		fmt.Fprintf(os.Stderr, "proxy: fronting %d replicas %v on http://%s\n",
			len(replicas), replicas, bound)
		if *portFile != "" {
			if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "proxy: writing portfile: %v; shutting down\n", err)
				stop()
			}
		}
	})
}

// cmdRollout drives one fleet-wide artifact rollout and prints the
// promotion evidence as JSON.
func cmdRollout(args []string) error {
	fs := flag.NewFlagSet("rollout", flag.ExitOnError)
	fleet := fs.String("fleet", "", "comma-separated serve replicas to roll out to (required)")
	artifact := fs.String("artifact", "", "candidate artifact file to push (required)")
	arch := fs.String("arch", "", "arch whose model is being replaced (default: each replica's default arch)")
	token := fs.String("token", "", "admin bearer token (must match the replicas' -admin-token)")
	threshold := fs.Float64("threshold", 0.99, "minimum per-replica shadow agreement rate required to promote")
	minScored := fs.Int64("min-scored", 10, "minimum shadow-scored requests each replica must accumulate")
	drive := fs.String("drive", "", "directory of .mtx files to post to every replica, generating shadow evidence on a quiet fleet")
	timeout := fs.Duration("timeout", 2*time.Minute, "bound on the whole rollout")
	poll := fs.Duration("poll", 500*time.Millisecond, "spacing of the observe-phase shadow checks")
	quiet := fs.Bool("q", false, "suppress progress lines (final JSON only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	replicas, err := parseFleet(*fleet)
	if err != nil {
		return fmt.Errorf("rollout: %w", err)
	}
	if *artifact == "" {
		return fmt.Errorf("rollout: -artifact is required")
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := proxy.Rollout(ctx, proxy.RolloutConfig{
		Replicas:     replicas,
		Arch:         *arch,
		ArtifactPath: *artifact,
		Token:        *token,
		Threshold:    *threshold,
		MinScored:    *minScored,
		DriveDir:     *drive,
		Timeout:      *timeout,
		Poll:         *poll,
		Log:          logf,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
