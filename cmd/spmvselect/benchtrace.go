package main

// benchtrace measures what always-on request tracing costs: the same
// un-cached single-predict mix served by one server with the span
// pipeline plus tail-sampled trace store enabled (the default) and one
// with -trace -1, per-body best-of-rounds latencies compared at p50.
// The measurement is merged into BENCH_obs.json as a "serve_tracing"
// section (obs.ReadReport ignores keys it does not know, so the run
// report stays readable) and gated: tracing must cost at most
// -max-overhead of the untraced p50, the budget DESIGN.md commits to.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// traceBench is the committed record of one benchtrace run, the
// "serve_tracing" section of BENCH_obs.json.
type traceBench struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Matrices   int `json:"matrices"`
	Rounds     int `json:"rounds"`
	// Per-request latency quantiles of the same mix with tracing off
	// (-trace -1) and on (the default: span trees + trace-store offers
	// on every predict request).
	OffLatency latencyQuantiles `json:"tracing_off_latency"`
	OnLatency  latencyQuantiles `json:"tracing_on_latency"`
	// P50OverheadFrac = on/off - 1 at p50; the gate this run enforced.
	P50OverheadFrac float64 `json:"p50_overhead_frac"`
	MaxOverheadFrac float64 `json:"max_overhead_frac"`
	// RetainedTraces is the traced server's trace-store population after
	// the run — tail sampling at work while the overhead stayed in budget.
	RetainedTraces int `json:"retained_traces"`
}

func cmdBenchTrace(args []string) error {
	fs := flag.NewFlagSet("benchtrace", flag.ExitOnError)
	count := fs.Int("matrices", 24, "number of distinct matrices in the request mix")
	rounds := fs.Int("rounds", 5, "passes over the matrix set per server (per-body minimum wins)")
	clusters := fs.Int("clusters", 16, "K-Means clusters for the served model")
	out := fs.String("out", "BENCH_obs.json", "report file to merge the serve_tracing section into")
	maxOverhead := fs.Float64("max-overhead", 0.05,
		"fail when tracing-on p50 exceeds tracing-off p50 by more than this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ms, best, arch, err := labelledTrainingSet("Turing", true)
	if err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchtrace: training semisup on %d matrices (%s)...\n", len(ms), arch.Name)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: *clusters, Seed: 1})
	if err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	art := serve.NewSemisupArtifact(sel.Model(), arch.Name)

	items, err := dataset.Generate(dataset.Config{
		Seed: 99, BaseCount: *count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	if len(items) < *count {
		*count = len(items)
	}
	bodies := make([][]byte, *count)
	for i := 0; i < *count; i++ {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, items[i].Matrix); err != nil {
			return fmt.Errorf("benchtrace: %w", err)
		}
		bodies[i] = buf.Bytes()
	}

	// Both servers recompute every request — answer cache and feature
	// memo off — so the span pipeline wraps real parse/extract/predict
	// work, not a cache hit. The only difference between the two is
	// TraceCapacity.
	startServer := func(cfg serve.Config) (string, func(), error) {
		cfg.CacheSize = -1
		cfg.FeatMemoSize = -1
		srv, err := serve.NewServer(art, cfg)
		if err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		server := &http.Server{Handler: srv.Handler()}
		go server.Serve(ln)
		return "http://" + ln.Addr().String(), func() { server.Close() }, nil
	}
	offBase, offClose, err := startServer(serve.Config{TraceCapacity: -1, SlowRequest: -1, TraceSample: -1})
	if err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	defer offClose()
	onBase, onClose, err := startServer(serve.Config{AdminToken: "benchtrace"})
	if err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	defer onClose()
	client := &http.Client{Timeout: time.Minute}

	// one posts body i to base, folding the duration into the per-body
	// minimum (scheduler noise only ever adds time) and keeping the
	// answered format.
	one := func(base string, i int, lat []time.Duration, formats []string) error {
		start := time.Now()
		resp, err := client.Post(base+"/v1/predict/matrix", "text/plain", bytes.NewReader(bodies[i]))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var ans struct {
			Format string `json:"format"`
			Msg    string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return err
		}
		d := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s", resp.Status, ans.Msg)
		}
		if lat != nil {
			if lat[i] == 0 || d < lat[i] {
				lat[i] = d
			}
			formats[i] = ans.Format
		}
		return nil
	}
	pass := func(base string, lat []time.Duration, formats []string) error {
		for i := range bodies {
			if err := one(base, i, lat, formats); err != nil {
				return err
			}
		}
		return nil
	}

	// Interleaved rounds: each round serves the full mix on the untraced
	// then the traced server, so slow drift of the host (frequency
	// scaling, background GC, cache state) lands on both columns instead
	// of biasing whichever ran second.
	if err := pass(offBase, nil, nil); err != nil { // warmup
		return fmt.Errorf("benchtrace: warmup: %w", err)
	}
	if err := pass(onBase, nil, nil); err != nil {
		return fmt.Errorf("benchtrace: warmup: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchtrace: %d matrices x %d interleaved rounds...\n", *count, *rounds)
	offLat := make([]time.Duration, len(bodies))
	onLat := make([]time.Duration, len(bodies))
	offFmt := make([]string, len(bodies))
	onFmt := make([]string, len(bodies))
	for r := 0; r < *rounds; r++ {
		if err := pass(offBase, offLat, offFmt); err != nil {
			return fmt.Errorf("benchtrace: tracing-off pass: %w", err)
		}
		if err := pass(onBase, onLat, onFmt); err != nil {
			return fmt.Errorf("benchtrace: tracing-on pass: %w", err)
		}
	}
	// Tracing is observation: any answer difference means the span
	// pipeline leaked into the prediction path.
	for i := range bodies {
		if onFmt[i] != offFmt[i] {
			return fmt.Errorf("benchtrace: body %d: traced server answered %q, untraced %q — tracing changed a prediction",
				i, onFmt[i], offFmt[i])
		}
	}

	// The traced server's store population, through the same admin API
	// operators use.
	retained := 0
	if body, err := fetchAdminJSON(onBase[len("http://"):], "/v1/admin/trace", "benchtrace", time.Minute); err == nil {
		var list struct {
			Count int `json:"count"`
		}
		if json.Unmarshal(body, &list) == nil {
			retained = list.Count
		}
	}

	res := traceBench{
		CPUs:            runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Matrices:        *count,
		Rounds:          *rounds,
		OffLatency:      quantiles(offLat),
		OnLatency:       quantiles(onLat),
		MaxOverheadFrac: *maxOverhead,
		RetainedTraces:  retained,
	}
	if res.OffLatency.P50Ms > 0 {
		res.P50OverheadFrac = res.OnLatency.P50Ms/res.OffLatency.P50Ms - 1
	}
	if err := mergeReportSection(*out, "serve_tracing", res); err != nil {
		return fmt.Errorf("benchtrace: %w", err)
	}
	fmt.Printf("benchtrace: %d cpus: p50 %.2fms untraced vs %.2fms traced (%+.1f%%), %d traces retained -> %s\n",
		res.CPUs, res.OffLatency.P50Ms, res.OnLatency.P50Ms, 100*res.P50OverheadFrac, retained, *out)

	if res.P50OverheadFrac > *maxOverhead {
		return fmt.Errorf("benchtrace: tracing p50 overhead %.1f%% above the %.0f%% budget",
			100*res.P50OverheadFrac, 100**maxOverhead)
	}
	return nil
}

// mergeReportSection sets one top-level key of a JSON file, preserving
// every other key byte-for-byte modulo re-indentation. A missing file
// starts an object holding only the new section.
func mergeReportSection(path, key string, section any) error {
	doc := map[string]json.RawMessage{}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("merging into %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		return err
	}
	raw, err := json.Marshal(section)
	if err != nil {
		return err
	}
	doc[key] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
