package main

// benchparse measures MatrixMarket ingest: the streaming reader
// (ReadMatrixMarket over an io.Reader) against the byte-slice fast path
// (ReadMatrixMarketBytesScratch with one pooled scratch), over the same
// bodies. Before any timing it parses every body through both readers
// and hard-fails on the first bitwise CSR difference — the fast path's
// whole contract is byte-identical output — then reports best-of-rounds
// wall time, throughput, and a Mallocs-delta allocation ratio. The
// result is committed as BENCH_parse.json and gated so CI catches the
// fast path losing its speedup or its allocation discipline.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// parseBench is the committed record of one benchparse run.
type parseBench struct {
	CPUs       int   `json:"cpus"`
	Matrices   int   `json:"matrices"`
	Rounds     int   `json:"rounds"`
	TotalBytes int64 `json:"total_bytes"`
	// Best-of-rounds wall time for one full pass over the body set.
	StreamSeconds float64 `json:"stream_seconds"`
	BytesSeconds  float64 `json:"bytes_seconds"`
	// Per-matrix averages and aggregate throughput for each reader.
	StreamNsPerMatrix float64 `json:"stream_ns_per_matrix"`
	BytesNsPerMatrix  float64 `json:"bytes_ns_per_matrix"`
	StreamMBPerSec    float64 `json:"stream_mb_per_sec"`
	BytesMBPerSec     float64 `json:"bytes_mb_per_sec"`
	// Speedup = stream time / fast-path time over identical bodies.
	Speedup float64 `json:"speedup"`
	// Heap allocations per matrix (runtime Mallocs delta over one pass)
	// and their ratio fast/stream.
	StreamAllocsPerMatrix float64 `json:"stream_allocs_per_matrix"`
	BytesAllocsPerMatrix  float64 `json:"bytes_allocs_per_matrix"`
	AllocFrac             float64 `json:"alloc_frac"`
	// Identical records that every body produced a bitwise-equal CSR
	// through both readers (the run fails before writing otherwise).
	Identical bool `json:"identical_output"`
}

// csrBitIdentical compares two parses of the same body the way the
// differential tests do: dimensions, index arrays, and value bits
// (math.Float64bits, so -0 vs 0 or differing NaN payloads count as a
// difference a float compare would hide).
func csrBitIdentical(a, b *sparse.CSR) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	ap, bp := a.RowPtr(), b.RowPtr()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	ai, bi := a.ColIdx(), b.ColIdx()
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

// benchparseBodies assembles the byte bodies to parse: every .mtx file
// under dir when set, otherwise -matrices generated matrices serialised
// through WriteMatrixMarket (a seed off the training corpus).
func benchparseBodies(dir string, count int) (bodies [][]byte, names []string, err error) {
	if dir != "" {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".mtx") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return nil, nil, err
			}
			bodies = append(bodies, data)
			names = append(names, e.Name())
		}
		if len(bodies) == 0 {
			return nil, nil, fmt.Errorf("no .mtx files in %s", dir)
		}
		return bodies, names, nil
	}
	items, err := dataset.Generate(dataset.Config{
		Seed: 42, BaseCount: count, Scale: 0.5, DropELLFailures: true,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, it.Matrix); err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, buf.Bytes())
		names = append(names, it.Name)
	}
	return bodies, names, nil
}

// allocsPerPass runs one full parse pass under a quiesced heap and
// returns the Mallocs delta per matrix. GC runs first so the collector
// does not retire spans mid-measurement.
func allocsPerPass(n int, pass func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	pass()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

func cmdBenchParse(args []string) error {
	fs := flag.NewFlagSet("benchparse", flag.ExitOnError)
	count := fs.Int("matrices", 24, "number of generated matrices to parse (ignored with -dir)")
	rounds := fs.Int("rounds", 5, "timed passes per reader (best round counts)")
	dir := fs.String("dir", "", "parse every .mtx file in this directory instead of generating bodies")
	out := fs.String("out", "BENCH_parse.json", "output JSON path")
	minSpeedup := fs.Float64("min-speedup", 3.0,
		"fail below this stream/fast-path time ratio (0 disables the gate)")
	maxAllocFrac := fs.Float64("max-alloc-frac", 0.10,
		"fail when the fast path allocates more than this fraction of the streaming reader's allocations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rounds < 1 {
		return fmt.Errorf("benchparse: -rounds %d: need >= 1", *rounds)
	}

	bodies, names, err := benchparseBodies(*dir, *count)
	if err != nil {
		return fmt.Errorf("benchparse: %w", err)
	}
	var totalBytes int64
	for _, b := range bodies {
		totalBytes += int64(len(b))
	}
	fmt.Fprintf(os.Stderr, "benchparse: %d matrices, %.1f MB total\n",
		len(bodies), float64(totalBytes)/1e6)

	// Correctness before speed: every body through both readers, and any
	// bitwise CSR difference is an immediate failure — a fast parse that
	// is fast because it is wrong must never produce a bench artifact.
	ps := sparse.GetParseScratch()
	defer sparse.PutParseScratch(ps)
	for i, body := range bodies {
		sm, serr := sparse.ReadMatrixMarket(bytes.NewReader(body))
		fm, ferr := sparse.ReadMatrixMarketBytesScratch(body, ps)
		if (serr == nil) != (ferr == nil) {
			return fmt.Errorf("benchparse: %s: reader verdicts disagree: stream err=%v, fast err=%v",
				names[i], serr, ferr)
		}
		if serr != nil {
			return fmt.Errorf("benchparse: %s: unreadable body: %w", names[i], serr)
		}
		if !csrBitIdentical(sm, fm) {
			return fmt.Errorf("benchparse: %s: fast path produced a different CSR than the streaming reader", names[i])
		}
	}
	fmt.Fprintf(os.Stderr, "benchparse: all %d parses bit-identical across both readers\n", len(bodies))

	streamPass := func() {
		for _, body := range bodies {
			if _, err := sparse.ReadMatrixMarket(bytes.NewReader(body)); err != nil {
				panic(err) // verified readable above
			}
		}
	}
	bytesPass := func() {
		for _, body := range bodies {
			if _, err := sparse.ReadMatrixMarketBytesScratch(body, ps); err != nil {
				panic(err)
			}
		}
	}

	// Best-of-rounds: scheduler noise and GC pauses only ever add time.
	timePasses := func(pass func()) time.Duration {
		var best time.Duration
		for r := 0; r < *rounds; r++ {
			start := time.Now()
			pass()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	fmt.Fprintf(os.Stderr, "benchparse: timing %d rounds per reader...\n", *rounds)
	streamDur := timePasses(streamPass)
	bytesDur := timePasses(bytesPass)
	streamAllocs := allocsPerPass(len(bodies), streamPass)
	bytesAllocs := allocsPerPass(len(bodies), bytesPass)

	n := float64(len(bodies))
	res := parseBench{
		CPUs:                  runtime.NumCPU(),
		Matrices:              len(bodies),
		Rounds:                *rounds,
		TotalBytes:            totalBytes,
		StreamSeconds:         streamDur.Seconds(),
		BytesSeconds:          bytesDur.Seconds(),
		StreamNsPerMatrix:     float64(streamDur.Nanoseconds()) / n,
		BytesNsPerMatrix:      float64(bytesDur.Nanoseconds()) / n,
		StreamMBPerSec:        float64(totalBytes) / 1e6 / streamDur.Seconds(),
		BytesMBPerSec:         float64(totalBytes) / 1e6 / bytesDur.Seconds(),
		Speedup:               streamDur.Seconds() / bytesDur.Seconds(),
		StreamAllocsPerMatrix: streamAllocs,
		BytesAllocsPerMatrix:  bytesAllocs,
		Identical:             true,
	}
	if streamAllocs > 0 {
		res.AllocFrac = bytesAllocs / streamAllocs
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchparse: stream %.0f ns/matrix (%.0f MB/s, %.0f allocs) vs fast %.0f ns/matrix (%.0f MB/s, %.1f allocs): %.2fx, %.1f%% of allocations -> %s\n",
		res.StreamNsPerMatrix, res.StreamMBPerSec, res.StreamAllocsPerMatrix,
		res.BytesNsPerMatrix, res.BytesMBPerSec, res.BytesAllocsPerMatrix,
		res.Speedup, 100*res.AllocFrac, *out)

	if *minSpeedup > 0 && res.Speedup < *minSpeedup {
		return fmt.Errorf("benchparse: fast-path speedup %.2fx below the %.2fx gate", res.Speedup, *minSpeedup)
	}
	if res.AllocFrac > *maxAllocFrac {
		return fmt.Errorf("benchparse: fast path allocates %.1f%% of the streaming reader's allocations; gate is %.0f%%",
			100*res.AllocFrac, 100**maxAllocFrac)
	}
	return nil
}
