#!/bin/sh
# ci.sh — the repository's check pipeline (also reachable as `make check`).
#
# Usage: ./ci.sh [bench]
#
#   (no argument)  vet + build + race-enabled tests + the obs
#                  disabled-path overhead benchmark
#   bench          additionally regenerate BENCH_obs.json from an
#                  instrumented paper-scale `table -n 9` run (minutes)
set -eu
cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== go test -race ./...'
go test -race ./...

echo '== obs disabled-path overhead (budget: < 2 ns/op, see internal/obs)'
go test -run - -bench BenchmarkObsOverhead -benchtime 100x . ./internal/obs

if [ "${1:-}" = bench ]; then
	echo '== regenerating BENCH_obs.json (instrumented table -n 9, paper scale)'
	go run ./cmd/spmvselect table -n 9 -obs :0 -report BENCH_obs.json >/dev/null
	go run ./cmd/spmvselect report -in BENCH_obs.json -text
fi

echo 'ci: all checks passed'
