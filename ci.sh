#!/bin/sh
# ci.sh — the repository's check pipeline (also reachable as `make check`).
#
# Usage: ./ci.sh [bench]
#
#   (no argument)  vet + build + race-enabled tests + the obs
#                  disabled-path overhead benchmark
#   bench          additionally regenerate BENCH_obs.json from an
#                  instrumented paper-scale `table -n 9` run (minutes)
#                  and BENCH_parallel.json from `spmvselect benchpar`,
#                  which fails when the parallel scheduler's output
#                  differs from sequential or its speedup falls below
#                  the machine-aware gate (3x with >= 8 CPUs; on
#                  smaller hosts it only rejects pathological slowdown)
set -eu
cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== go test -race ./...'
go test -race ./...

echo '== obs disabled-path overhead (budget: < 2 ns/op, see internal/obs)'
go test -run - -bench BenchmarkObsOverhead -benchtime 100x . ./internal/obs

echo '== serve smoke test (train -save, serve, request, SIGTERM)'
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
go build -o "$SMOKE/spmvselect" ./cmd/spmvselect
"$SMOKE/spmvselect" train -save "$SMOKE/model.gob" -quick -clusters 16 >/dev/null
"$SMOKE/spmvselect" export -dir "$SMOKE/mtx" -count 2 -seed 4 >/dev/null
MTX=$(ls "$SMOKE"/mtx/*.mtx | head -n 1)
"$SMOKE/spmvselect" serve -model "$SMOKE/model.gob" -addr 127.0.0.1:0 -portfile "$SMOKE/port" &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE/port" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/port" ] || { echo 'ci: serve never wrote its portfile'; exit 1; }
ADDR=$(cat "$SMOKE/port")
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX")
echo "$OUT" | grep -q '"format"' || { echo "ci: bad matrix prediction response: $OUT"; exit 1; }
ZEROS='0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0'
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -features "$ZEROS")
echo "$OUT" | grep -q '"format"' || { echo "ci: bad feature-vector prediction response: $OUT"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo 'ci: serve did not exit cleanly on SIGTERM'; exit 1; }

if [ "${1:-}" = bench ]; then
	echo '== regenerating BENCH_obs.json (instrumented table -n 9, paper scale)'
	go run ./cmd/spmvselect table -n 9 -obs :0 -report BENCH_obs.json >/dev/null
	go run ./cmd/spmvselect report -in BENCH_obs.json -text
	echo '== regenerating BENCH_parallel.json (sequential vs parallel tables, quick scale)'
	go run ./cmd/spmvselect benchpar -workers 8 -out BENCH_parallel.json
fi

echo 'ci: all checks passed'
