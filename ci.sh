#!/bin/sh
# ci.sh — the repository's check pipeline (also reachable as `make check`).
#
# Usage: ./ci.sh [bench]
#
#   (no argument)  vet + build + race-enabled tests + the race-free
#                  allocation guards (pooled parse scratch, feature-memo
#                  hits) + the obs disabled-path overhead benchmark + a
#                  benchparse differential smoke (the byte-slice
#                  MatrixMarket fast path must parse every exported
#                  matrix bit-identically to the streaming reader) +
#                  four end-to-end serving smoke tests (single-model
#                  with telemetry:
#                  access-log trace IDs, the Prometheus /metrics
#                  exposition and `monitor -once`; the full registry:
#                  multi-arch routing, batch, authenticated reload,
#                  shadow evaluation and promote; the quality loop
#                  under a race-enabled server: serve -record, mixed
#                  traffic with /v1/feedback outcome reports, capture
#                  replay reproducing every recorded prediction, and a
#                  populated /v1/admin/quality window; and the
#                  cheap-first cascade: a `train -cascade` artifact
#                  served with stage metrics on /metrics, cascade
#                  stats in /v1/admin/quality, feature-memo hit/miss
#                  counters matching the request mix, and a capture
#                  replayed with zero mismatches) + a fleet smoke test
#                  (three replicas behind the consistent-hash proxy:
#                  one replica SIGKILLed under load with zero
#                  client-visible errors, admin fan-out aggregation,
#                  the fleet monitor view, a distributed-trace check —
#                  a request hedged off a frozen ring owner fetched by
#                  X-Request-ID as one stitched span tree holding both
#                  proxy attempts and the winning replica's stage
#                  spans — and a fleet-wide rollout that pushes a
#                  candidate to every survivor's shadow slot and
#                  promotes only after the whole fleet clears the
#                  agreement threshold)
#   bench          additionally regenerate BENCH_obs.json from an
#                  instrumented paper-scale `table -n 9` run (minutes)
#                  plus a `spmvselect benchtrace` serve_tracing section
#                  (tracing-on vs tracing-off predict p50, failing when
#                  always-on tracing costs more than 5%),
#                  BENCH_parallel.json from `spmvselect benchpar`,
#                  which fails when the parallel scheduler's output
#                  differs from sequential or its speedup falls below
#                  the machine-aware gate (3x with >= 8 CPUs; on
#                  smaller hosts it only rejects pathological slowdown),
#                  BENCH_parse.json from `spmvselect benchparse`
#                  (streaming vs byte-slice MatrixMarket ingest;
#                  fails below 3x or above 10% of the streaming
#                  reader's allocations, and on any CSR difference),
#                  BENCH_serve.json from `spmvselect benchserve`
#                  (batched vs single-request serving plus the
#                  cascade-on/off and feature-memo on/off
#                  comparisons: calibrated agreement is always
#                  enforced, the p50 wins only on hosts with
#                  enough cores),
#                  BENCH_replay.json from `spmvselect benchreplay`
#                  (record/feedback/replay cycle; hard-fails when a
#                  replayed prediction differs from the recording),
#                  and BENCH_fleet.json from `spmvselect benchfleet`
#                  (the same request mix through the proxy over one
#                  replica vs the fleet; hard-fails when any proxied
#                  answer differs byte-for-byte from a direct replica
#                  answer, and on sub-gate scaling — near-linear with
#                  enough cores, not-pathologically-slower otherwise)
set -eu
cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== go test -race ./...'
go test -race ./...

echo '== allocation guards (AllocsPerRun needs a race-free binary)'
go test -run Allocs -count=1 ./internal/sparse ./internal/serve

echo '== obs disabled-path overhead (budget: < 2 ns/op, see internal/obs)'
go test -run - -bench BenchmarkObsOverhead -benchtime 100x . ./internal/obs

echo '== serve smoke test (train -save, serve, request, telemetry, SIGTERM)'
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
ADMIN_TOKEN=ci-admin-secret
go build -o "$SMOKE/spmvselect" ./cmd/spmvselect
"$SMOKE/spmvselect" train -save "$SMOKE/model.gob" -quick -clusters 16 >/dev/null
"$SMOKE/spmvselect" export -dir "$SMOKE/mtx" -count 2 -seed 4 >/dev/null
MTX=$(ls "$SMOKE"/mtx/*.mtx | head -n 1)
# The ingest fast path must produce bit-identical CSRs to the streaming
# reader on every exported matrix (benchparse hard-fails on the first
# difference; the perf gates are off here — the bench section measures).
"$SMOKE/spmvselect" benchparse -dir "$SMOKE/mtx" -rounds 1 \
	-min-speedup 0 -max-alloc-frac 1 -out "$SMOKE/bench_parse_smoke.json" >/dev/null \
	|| { echo 'ci: fast-path parse diverged from the streaming reader'; exit 1; }
"$SMOKE/spmvselect" serve -model "$SMOKE/model.gob" -addr 127.0.0.1:0 -portfile "$SMOKE/port" \
	-admin-token "$ADMIN_TOKEN" -access-log "$SMOKE/access.log" &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE/port" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/port" ] || { echo 'ci: serve never wrote its portfile'; exit 1; }
ADDR=$(cat "$SMOKE/port")
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX" -request-id trace-ci-42)
echo "$OUT" | grep -q '"format"' || { echo "ci: bad matrix prediction response: $OUT"; exit 1; }
ZEROS='0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0'
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -features "$ZEROS")
echo "$OUT" | grep -q '"format"' || { echo "ci: bad feature-vector prediction response: $OUT"; exit 1; }
# The access log must carry exactly the one line tagged with the trace
# ID the client sent, as structured JSON.
N=$(grep -c '"trace_id":"trace-ci-42"' "$SMOKE/access.log" || true)
[ "$N" = 1 ] || { echo "ci: access log has $N lines for trace-ci-42, want 1"; cat "$SMOKE/access.log"; exit 1; }
grep '"trace_id":"trace-ci-42"' "$SMOKE/access.log" | grep -q '"path":"/v1/predict/matrix"' \
	|| { echo 'ci: traced access-log line lacks the request path'; exit 1; }
# The Prometheus exposition must include the labeled request metrics
# fed by the traffic above.
METRICS=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /metrics)
echo "$METRICS" | grep -q '^spmvselect_serve_predictions_total{' \
	|| { echo 'ci: /metrics lacks the per-arch prediction counter'; exit 1; }
echo "$METRICS" | grep -q '^spmvselect_serve_http_seconds_bucket{' \
	|| { echo 'ci: /metrics lacks the request latency histogram'; exit 1; }
echo "$METRICS" | grep -q 'spmvselect_slo_availability{window="1m"}' \
	|| { echo 'ci: /metrics lacks the SLO availability gauge'; exit 1; }
# monitor -once re-scrapes everything (readiness, metrics, SLO, drift)
# and exits non-zero when any telemetry family is missing.
"$SMOKE/spmvselect" monitor -addr "$ADDR" -token "$ADMIN_TOKEN" -once >/dev/null \
	|| { echo 'ci: monitor -once failed against a live server'; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo 'ci: serve did not exit cleanly on SIGTERM'; exit 1; }

echo '== registry smoke test (multi-arch serve, batch, reload, shadow, promote)'
ADMIN_TOKEN=ci-admin-secret
"$SMOKE/spmvselect" train -save "$SMOKE/pascal.gob" -model knn -arch Pascal -quick >/dev/null
"$SMOKE/spmvselect" train -save "$SMOKE/cand.gob" -model knn -arch Turing -quick -seed 5 >/dev/null
"$SMOKE/spmvselect" serve -models "turing=$SMOKE/model.gob,pascal=$SMOKE/pascal.gob" \
	-shadow "turing=$SMOKE/cand.gob" -admin-token "$ADMIN_TOKEN" \
	-addr 127.0.0.1:0 -portfile "$SMOKE/port2" &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE/port2" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/port2" ] || { echo 'ci: registry serve never wrote its portfile'; exit 1; }
ADDR=$(cat "$SMOKE/port2")
i=0
until "$SMOKE/spmvselect" request -addr "$ADDR" -get /readyz >/dev/null 2>&1; do
	sleep 0.1; i=$((i+1))
	[ $i -lt 100 ] || { echo 'ci: registry serve never became ready'; exit 1; }
done
MTX2=$(ls "$SMOKE"/mtx/*.mtx | sed -n 2p)
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX" -arch pascal)
echo "$OUT" | grep -q '"arch":"pascal"' || { echo "ci: prediction not routed to pascal: $OUT"; exit 1; }
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -batch "$MTX,$MTX2")
echo "$OUT" | grep -q '"count":2' || { echo "ci: bad batch response: $OUT"; exit 1; }
echo "$OUT" | grep -q '"errors":0' || { echo "ci: batch items failed: $OUT"; exit 1; }
if "$SMOKE/spmvselect" request -addr "$ADDR" -post /v1/admin/reload >/dev/null 2>&1; then
	echo 'ci: unauthenticated admin reload was accepted'; exit 1
fi
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -post /v1/admin/reload -token "$ADMIN_TOKEN")
echo "$OUT" | grep -q '"changed":\[\]' || { echo "ci: reload of unchanged files swapped something: $OUT"; exit 1; }
"$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX" -arch turing >/dev/null
"$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX2" -arch turing >/dev/null
SHADOW=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /v1/admin/shadow -token "$ADMIN_TOKEN")
echo "$SHADOW" | grep -q '"scored":4' || { echo "ci: shadow report did not score the turing traffic: $SHADOW"; exit 1; }
CAND_HASH=$(echo "$SHADOW" | grep -o '"candidate_hash":"[0-9a-f]*"' | head -n 1 | cut -d'"' -f4)
HASH_BEFORE=$("$SMOKE/spmvselect" request -addr "$ADDR" -get '/v1/model?arch=turing' | grep -o '"hash":"[0-9a-f]*"' | head -n 1 | cut -d'"' -f4)
"$SMOKE/spmvselect" promote -addr "$ADDR" -arch turing -token "$ADMIN_TOKEN" >/dev/null
HASH_AFTER=$("$SMOKE/spmvselect" request -addr "$ADDR" -get '/v1/model?arch=turing' | grep -o '"hash":"[0-9a-f]*"' | head -n 1 | cut -d'"' -f4)
[ -n "$HASH_AFTER" ] || { echo 'ci: /v1/model reported no hash after promote'; exit 1; }
[ "$HASH_AFTER" != "$HASH_BEFORE" ] || { echo 'ci: promote did not change the served model'; exit 1; }
[ "$HASH_AFTER" = "$CAND_HASH" ] || { echo "ci: promoted hash $HASH_AFTER is not the candidate $CAND_HASH"; exit 1; }
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /v1/admin/shadow -token "$ADMIN_TOKEN")
echo "$OUT" | grep -q '"arches":\[\]' || { echo "ci: shadow pairing survived the promote: $OUT"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo 'ci: registry serve did not exit cleanly on SIGTERM'; exit 1; }
# A dead server is a monitoring failure, not a quiet dashboard: the
# one-shot form must exit non-zero once nothing answers.
if "$SMOKE/spmvselect" monitor -addr "$ADDR" -once >/dev/null 2>&1; then
	echo 'ci: monitor -once succeeded against a dead server'; exit 1
fi

echo '== replay smoke test (record, feedback, replay; race-enabled server)'
go build -race -o "$SMOKE/spmvselect.race" ./cmd/spmvselect
"$SMOKE/spmvselect.race" serve -models "turing=$SMOKE/model.gob" -admin-token "$ADMIN_TOKEN" \
	-addr 127.0.0.1:0 -portfile "$SMOKE/port3" -cache -1 \
	-record "$SMOKE/capture" -access-log "$SMOKE/access3.log" -access-log-sample 4 &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE/port3" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/port3" ] || { echo 'ci: recording serve never wrote its portfile'; exit 1; }
ADDR=$(cat "$SMOKE/port3")
i=0
until "$SMOKE/spmvselect" request -addr "$ADDR" -get /readyz >/dev/null 2>&1; do
	sleep 0.1; i=$((i+1))
	[ $i -lt 100 ] || { echo 'ci: recording serve never became ready'; exit 1; }
done
# ~20 mixed requests: 12 singles with full per-format feedback sweeps,
# plus 2 batches whose items report served-time-only outcomes.
i=0
while [ $i -lt 12 ]; do
	if [ $((i % 2)) -eq 0 ]; then M=$MTX; else M=$MTX2; fi
	"$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$M" -request-id "replay-$i" >/dev/null
	"$SMOKE/spmvselect" request -addr "$ADDR" -post /v1/feedback \
		-json "{\"request_id\":\"replay-$i\",\"times_ms\":{\"COO\":2.5,\"CSR\":1.0,\"ELL\":3.0,\"HYB\":4.0}}" >/dev/null
	i=$((i+1))
done
b=0
while [ $b -lt 2 ]; do
	"$SMOKE/spmvselect" request -addr "$ADDR" -batch "$MTX,$MTX2" -request-id "replay-batch-$b" >/dev/null
	j=0
	while [ $j -lt 2 ]; do
		"$SMOKE/spmvselect" request -addr "$ADDR" -post /v1/feedback \
			-json "{\"request_id\":\"replay-batch-$b\",\"item\":$j,\"served_ms\":1.5}" >/dev/null
		j=$((j+1))
	done
	b=$((b+1))
done
# A duplicate report must be rejected: outcomes are consume-once.
if "$SMOKE/spmvselect" request -addr "$ADDR" -post /v1/feedback \
	-json '{"request_id":"replay-0","served_ms":1.0}' >/dev/null 2>&1; then
	echo 'ci: duplicate feedback was accepted'; exit 1
fi
# Replaying the capture against the same live model must reproduce
# every recorded prediction (replay exits non-zero on any mismatch).
"$SMOKE/spmvselect" replay -dir "$SMOKE/capture" -addr "$ADDR" -concurrency 4 \
	|| { echo 'ci: replay failed or predictions diverged from the recording'; exit 1; }
# The feedback landed: the quality window holds the 12 full outcomes
# (batch items reported served-time-only, which do not count as full
# samples).
QUALITY=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /v1/admin/quality -token "$ADMIN_TOKEN")
echo "$QUALITY" | grep -q '"samples":12' || { echo "ci: quality window missing the feedback outcomes: $QUALITY"; exit 1; }
echo "$QUALITY" | grep -q '"served_only":4' || { echo "ci: quality window missing the served-only outcomes: $QUALITY"; exit 1; }
# Sampling kept the feedback trail complete (16 accepted + the 404
# duplicate, which logs as an error) while dropping most of the 24
# /v1/predict requests (12 recorded + 12 replayed).
FEEDBACK_LINES=$(grep -c '"endpoint":"/v1/feedback"' "$SMOKE/access3.log" || true)
[ "$FEEDBACK_LINES" -eq 17 ] || { echo "ci: feedback access-log lines = $FEEDBACK_LINES, want 17"; exit 1; }
PREDICT_LINES=$(grep -c '"endpoint":"/v1/predict/matrix"' "$SMOKE/access3.log" || true)
[ "$PREDICT_LINES" -lt 24 ] || { echo "ci: access-log sampling logged all $PREDICT_LINES predict requests"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo 'ci: recording serve did not exit cleanly on SIGTERM'; exit 1; }

echo '== cascade smoke test (cheap-first artifact, stage metrics, capture replay)'
"$SMOKE/spmvselect" train -save "$SMOKE/cascade.gob" -quick -clusters 16 \
	-cascade -cascade-target-agreement 0.85 >/dev/null
"$SMOKE/spmvselect" serve -models "turing=$SMOKE/cascade.gob" -admin-token "$ADMIN_TOKEN" \
	-addr 127.0.0.1:0 -portfile "$SMOKE/port4" -cache -1 -record "$SMOKE/capture2" &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE/port4" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/port4" ] || { echo 'ci: cascade serve never wrote its portfile'; exit 1; }
ADDR=$(cat "$SMOKE/port4")
i=0
until "$SMOKE/spmvselect" request -addr "$ADDR" -get /readyz >/dev/null 2>&1; do
	sleep 0.1; i=$((i+1))
	[ $i -lt 100 ] || { echo 'ci: cascade serve never became ready'; exit 1; }
done
# The artifact advertises its calibration, and every computed answer
# names the stage that produced it.
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /v1/model)
echo "$OUT" | grep -q '"cascade":true' || { echo "ci: /v1/model does not advertise the cascade: $OUT"; exit 1; }
OUT=$("$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX")
echo "$OUT" | grep -q '"stage":"' || { echo "ci: cascade prediction carries no stage: $OUT"; exit 1; }
"$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX2" >/dev/null
"$SMOKE/spmvselect" request -addr "$ADDR" -mtx "$MTX" >/dev/null
METRICS=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /metrics)
echo "$METRICS" | grep -q '^spmvselect_serve_cascade_hits_total' \
	|| { echo 'ci: /metrics lacks the cascade hit counter'; exit 1; }
echo "$METRICS" | grep -q '^spmvselect_serve_cascade_fallthroughs_total' \
	|| { echo 'ci: /metrics lacks the cascade fallthrough counter'; exit 1; }
echo "$METRICS" | grep -q 'spmvselect_serve_cascade_confidence' \
	|| { echo 'ci: /metrics lacks the cascade confidence histogram'; exit 1; }
# The feature memo fronted those 3 requests: MTX, MTX2, MTX is two
# distinct bodies, so exactly one repeat hit, two misses, and two
# resident entries.
MHITS=$(echo "$METRICS" | sed -n 's/^spmvselect_serve_featmemo_hits_total \([0-9]*\)$/\1/p')
MMISSES=$(echo "$METRICS" | sed -n 's/^spmvselect_serve_featmemo_misses_total \([0-9]*\)$/\1/p')
[ "$MHITS" = 1 ] || { echo "ci: featmemo hits = $MHITS after one repeat body, want 1"; exit 1; }
[ "$MMISSES" = 2 ] || { echo "ci: featmemo misses = $MMISSES over two distinct bodies, want 2"; exit 1; }
echo "$METRICS" | grep -q '^spmvselect_serve_featmemo_entries 2$' \
	|| { echo 'ci: featmemo entries gauge does not show 2 resident bodies'; exit 1; }
# The stage tallies (hits + fallthroughs) must cover the 3 computed
# predictions, and the quality report must carry the hit rate.
HITS=$(echo "$METRICS" | sed -n 's/^spmvselect_serve_cascade_hits_total \([0-9]*\)$/\1/p')
FALLS=$(echo "$METRICS" | sed -n 's/^spmvselect_serve_cascade_fallthroughs_total \([0-9]*\)$/\1/p')
[ "$((HITS + FALLS))" -eq 3 ] || { echo "ci: cascade tallies $HITS+$FALLS, want 3"; exit 1; }
QUALITY=$("$SMOKE/spmvselect" request -addr "$ADDR" -get /v1/admin/quality -token "$ADMIN_TOKEN")
echo "$QUALITY" | grep -q '"cascade"' || { echo "ci: quality report lacks cascade stats: $QUALITY"; exit 1; }
echo "$QUALITY" | grep -q '"window_size"' || { echo "ci: cascade graft broke the quality report shape: $QUALITY"; exit 1; }
# Replaying the capture against the cascade artifact must reproduce
# every recorded answer (mismatches == 0; replay exits non-zero else).
"$SMOKE/spmvselect" replay -dir "$SMOKE/capture2" -addr "$ADDR" \
	|| { echo 'ci: replay against the cascade artifact diverged from the recording'; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo 'ci: cascade serve did not exit cleanly on SIGTERM'; exit 1; }

echo '== fleet smoke test (3 replicas + proxy, kill-one under load, fleet rollout)'
# Three registry-backed replicas of the same model behind the proxy.
# Registry backends are required: the fleet rollout pushes candidates
# over /v1/admin/shadow/install, which static backends refuse.
r=1
while [ $r -le 3 ]; do
	"$SMOKE/spmvselect" serve -models "turing=$SMOKE/model.gob" -admin-token "$ADMIN_TOKEN" \
		-addr 127.0.0.1:0 -portfile "$SMOKE/fport$r" &
	eval "R${r}_PID=\$!"
	r=$((r+1))
done
r=1
while [ $r -le 3 ]; do
	i=0
	while [ ! -s "$SMOKE/fport$r" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
	[ -s "$SMOKE/fport$r" ] || { echo "ci: fleet replica $r never wrote its portfile"; exit 1; }
	eval "R$r=\$(cat \"$SMOKE/fport$r\")"
	r=$((r+1))
done
"$SMOKE/spmvselect" proxy -fleet "$R1,$R2,$R3" -addr 127.0.0.1:0 -portfile "$SMOKE/pport" \
	-hedge-after 100ms -health-interval 500ms -admin-token "$ADMIN_TOKEN" -trace-sample -1 &
PROXY_PID=$!
i=0
while [ ! -s "$SMOKE/pport" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$SMOKE/pport" ] || { echo 'ci: proxy never wrote its portfile'; exit 1; }
PADDR=$(cat "$SMOKE/pport")
i=0
until "$SMOKE/spmvselect" request -addr "$PADDR" -get /readyz >/dev/null 2>&1; do
	sleep 0.1; i=$((i+1))
	[ $i -lt 100 ] || { echo 'ci: proxy never became ready'; exit 1; }
done
# A routed prediction works and carries the serving model's hash.
OUT=$("$SMOKE/spmvselect" request -addr "$PADDR" -mtx "$MTX")
echo "$OUT" | grep -q '"format"' || { echo "ci: bad proxied prediction: $OUT"; exit 1; }
# The admin fan-out aggregates every replica (all three must answer).
SLO=$("$SMOKE/spmvselect" request -addr "$PADDR" -get /v1/admin/slo -token "$ADMIN_TOKEN")
echo "$SLO" | grep -q '"fleet"' || { echo "ci: proxied SLO lacks the fleet aggregate: $SLO"; exit 1; }
# monitor detects the proxy and requires its metric families.
"$SMOKE/spmvselect" monitor -addr "$PADDR" -once | grep -q 'REPLICAS' \
	|| { echo 'ci: monitor -once did not render the fleet view'; exit 1; }
# Distributed-trace smoke: a probe request names the ring owner of
# MTX2's key in its attempt span; freezing that replica makes the next
# request deliberately slow, so it hedges after 100ms and wins on the
# next replica. Fetching the trace by its X-Request-ID from the proxy
# must return one stitched tree: both attempt spans (one hedged) under
# the proxy root, with the winning replica's own parse/predict stage
# spans grafted beneath.
"$SMOKE/spmvselect" request -addr "$PADDR" -mtx "$MTX2" -request-id trace-probe-ci -keep-trace >/dev/null
PROBE=$("$SMOKE/spmvselect" trace -addr "$PADDR" -id trace-probe-ci -token "$ADMIN_TOKEN" -json)
OWNER=$(echo "$PROBE" | grep -o '"name":"attempt/[^"]*"' | head -n 1 | sed 's|.*attempt/||; s|"||')
[ -n "$OWNER" ] || { echo "ci: probe trace has no attempt span: $PROBE"; exit 1; }
OWNER_PID=''
[ "$OWNER" = "$R1" ] && OWNER_PID=$R1_PID
[ "$OWNER" = "$R2" ] && OWNER_PID=$R2_PID
[ "$OWNER" = "$R3" ] && OWNER_PID=$R3_PID
[ -n "$OWNER_PID" ] || { echo "ci: ring owner $OWNER is not a known replica"; exit 1; }
kill -STOP "$OWNER_PID"
"$SMOKE/spmvselect" request -addr "$PADDR" -mtx "$MTX2" -request-id trace-stitch-ci -keep-trace -v \
	>/dev/null 2>"$SMOKE/reqv.err" \
	|| { kill -CONT "$OWNER_PID"; echo 'ci: traced request failed with the ring owner frozen'; exit 1; }
kill -CONT "$OWNER_PID"
# request -v surfaced the response's trace and model identity.
grep -q 'X-Request-ID: trace-stitch-ci' "$SMOKE/reqv.err" \
	|| { echo 'ci: request -v did not print the X-Request-ID'; cat "$SMOKE/reqv.err"; exit 1; }
grep -q 'X-Model-Hash: [0-9a-f]' "$SMOKE/reqv.err" \
	|| { echo 'ci: request -v did not print the X-Model-Hash'; cat "$SMOKE/reqv.err"; exit 1; }
sleep 0.3
STITCHED=$("$SMOKE/spmvselect" trace -addr "$PADDR" -id trace-stitch-ci -token "$ADMIN_TOKEN" -json)
echo "$STITCHED" | grep -q '"stitched_from":\["' \
	|| { echo "ci: stitched trace carries no replica spans: $STITCHED"; exit 1; }
ATTEMPTS=$(echo "$STITCHED" | grep -o '"name":"attempt/' | wc -l)
[ "$ATTEMPTS" -eq 2 ] || { echo "ci: stitched trace has $ATTEMPTS attempt spans, want 2"; exit 1; }
echo "$STITCHED" | grep -q '"hedged":1' \
	|| { echo "ci: stitched trace shows no hedged attempt: $STITCHED"; exit 1; }
echo "$STITCHED" | grep -q '"name":"parse"' \
	|| { echo "ci: stitched trace lacks the replica parse span: $STITCHED"; exit 1; }
echo "$STITCHED" | grep -q '"name":"predict"' \
	|| { echo "ci: stitched trace lacks the replica predict span: $STITCHED"; exit 1; }
# The text renderer draws the same stitched tree.
"$SMOKE/spmvselect" trace -addr "$PADDR" -id trace-stitch-ci -token "$ADMIN_TOKEN" | grep -q 'attempt/' \
	|| { echo 'ci: trace rendering lost the attempt spans'; exit 1; }
# 60 requests through the proxy; one replica is SIGKILLed mid-load.
# Hedging plus transport-failure ejection must keep every answer 2xx —
# zero client-visible errors is the whole point of the front door.
i=0
while [ $i -lt 60 ]; do
	[ $i -eq 20 ] && kill -9 "$R3_PID"
	if [ $((i % 2)) -eq 0 ]; then M=$MTX; else M=$MTX2; fi
	"$SMOKE/spmvselect" request -addr "$PADDR" -mtx "$M" >/dev/null \
		|| { echo "ci: client-visible error at proxied request $i after the kill"; exit 1; }
	i=$((i+1))
done
sleep 1
FLEET=$("$SMOKE/spmvselect" request -addr "$PADDR" -get /v1/fleet)
echo "$FLEET" | grep -q '"replica_count":3' || { echo "ci: bad fleet status: $FLEET"; exit 1; }
echo "$FLEET" | grep -q '"healthy_count":2' || { echo "ci: killed replica was not ejected: $FLEET"; exit 1; }
# Fleet rollout over the two survivors: push a retrained candidate
# (same config, different seed: different bytes, agreeing predictions),
# observe shadow agreement on driven traffic, promote everywhere.
"$SMOKE/spmvselect" train -save "$SMOKE/fleetcand.gob" -quick -clusters 16 -seed 7 >/dev/null
"$SMOKE/spmvselect" export -dir "$SMOKE/fmtx" -count 8 -seed 12 >/dev/null
HASH_BEFORE=$("$SMOKE/spmvselect" request -addr "$R1" -get /v1/model | grep -o '"hash":"[0-9a-f]*"' | head -n 1 | cut -d'"' -f4)
ROLLOUT=$("$SMOKE/spmvselect" rollout -fleet "$R1,$R2" -artifact "$SMOKE/fleetcand.gob" -arch turing \
	-token "$ADMIN_TOKEN" -min-scored 8 -drive "$SMOKE/fmtx" -q) \
	|| { echo 'ci: fleet rollout failed'; exit 1; }
CAND_HASH=$(echo "$ROLLOUT" | grep -o '"hash": *"[0-9a-f]*"' | head -n 1 | grep -o '[0-9a-f]*"$' | tr -d '"')
[ -n "$CAND_HASH" ] || { echo "ci: rollout reported no hash: $ROLLOUT"; exit 1; }
[ "$CAND_HASH" != "$HASH_BEFORE" ] || { echo 'ci: rollout candidate is the live model'; exit 1; }
# Every surviving replica flipped to the candidate together.
for R in "$R1" "$R2"; do
	H=$("$SMOKE/spmvselect" request -addr "$R" -get /v1/model | grep -o '"hash":"[0-9a-f]*"' | head -n 1 | cut -d'"' -f4)
	[ "$H" = "$CAND_HASH" ] || { echo "ci: replica $R serves $H after rollout, want $CAND_HASH"; exit 1; }
done
kill -TERM "$PROXY_PID"
wait "$PROXY_PID" || { echo 'ci: proxy did not exit cleanly on SIGTERM'; exit 1; }
kill -TERM "$R1_PID" "$R2_PID"
wait "$R1_PID" || { echo 'ci: fleet replica 1 did not exit cleanly'; exit 1; }
wait "$R2_PID" || { echo 'ci: fleet replica 2 did not exit cleanly'; exit 1; }
wait "$R3_PID" 2>/dev/null || true

if [ "${1:-}" = bench ]; then
	echo '== regenerating BENCH_obs.json (instrumented table -n 9, paper scale)'
	go run ./cmd/spmvselect table -n 9 -obs :0 -report BENCH_obs.json >/dev/null
	echo '== merging serve_tracing into BENCH_obs.json (tracing on/off p50, <= 5% gate)'
	go run ./cmd/spmvselect benchtrace -out BENCH_obs.json
	go run ./cmd/spmvselect report -in BENCH_obs.json -text
	echo '== regenerating BENCH_parallel.json (sequential vs parallel tables, quick scale)'
	go run ./cmd/spmvselect benchpar -workers 8 -out BENCH_parallel.json
	echo '== regenerating BENCH_parse.json (streaming vs byte-slice MatrixMarket ingest)'
	go run ./cmd/spmvselect benchparse -out BENCH_parse.json
	echo '== regenerating BENCH_serve.json (single-request vs batched serving throughput)'
	go run ./cmd/spmvselect benchserve -out BENCH_serve.json
	echo '== regenerating BENCH_replay.json (record/feedback/replay quality loop)'
	go run ./cmd/spmvselect benchreplay -out BENCH_replay.json
	echo '== regenerating BENCH_fleet.json (proxied 1-replica vs fleet throughput)'
	go run ./cmd/spmvselect benchfleet -out BENCH_fleet.json
fi

echo 'ci: all checks passed'
